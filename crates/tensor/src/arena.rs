//! Per-batch bump-allocator arena for tape-free inference.
//!
//! During serve scoring every intermediate [`Matrix`](crate::Matrix) is
//! short-lived: it is produced by one op, consumed by the next, and dead by
//! the end of the batch. The scratch pool (PR 2) already avoids the system
//! allocator for these, but each take/recycle still pays a `RefCell` borrow,
//! a bucket scan, and per-buffer bookkeeping. The arena removes even that:
//! inside an [`scoped`] region, `Matrix` storage comes from a thread-local
//! bump allocator — an offset increment into a retained chunk — and dropping
//! a matrix is a single atomic decrement.
//!
//! # Lifecycle
//!
//! * [`scoped`] is entered once per padded batch (by `Uae::infer_batch` and
//!   `Recommender::infer`). Entering the *outermost* scope **resets** the
//!   bump offset, reusing the chunks left over from the previous batch, so a
//!   warmed-up serving thread performs **zero heap allocations per batch**
//!   ([`ArenaStats::heap_allocs`] stays flat — the counter CI gates on).
//! * Matrices may outlive the scope (the scorer reads logits out *after*
//!   `infer_batch` returns). Each lease holds an `Arc` on its chunk, so the
//!   memory stays valid; the next scope entry only reuses chunks whose live
//!   count has returned to zero.
//! * If any lease from the previous batch is still alive at reset time the
//!   arena **retires** those chunks instead of reusing them (the leaseholders
//!   keep them alive; fresh chunks are allocated). That makes cross-request
//!   reuse hazards structurally impossible — a leak shows up as a non-zero
//!   [`ArenaStats::retires`] / `heap_allocs` counter, never as corrupted
//!   scores.
//!
//! `UAE_EXEC_ARENA=off` disables the arena process-wide (every allocation
//! falls back to the scratch pool); [`with_arena`] pins it per-thread for
//! tests and benches.

use std::cell::{Cell, RefCell, UnsafeCell};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

/// Default chunk size: 1 MiB of `f32`. Oversized requests get a dedicated
/// chunk of exactly their (rounded) size.
const CHUNK_FLOATS: usize = 256 * 1024;
/// Lease granularity in floats (64 bytes): keeps rows of successive
/// matrices from sharing a cache line.
const ALIGN_FLOATS: usize = 16;

/// One retained slab of arena memory. The boxed slice never moves or grows,
/// so raw pointers into it stay valid for the `Arc`'s lifetime.
struct ChunkBuf {
    data: UnsafeCell<Box<[f32]>>,
    /// Outstanding leases into this chunk.
    live: AtomicUsize,
}

// Safety: the arena hands out non-overlapping ranges, and a range is only
// ever written through the `&mut Matrix` that owns its lease. The chunk
// itself is only read/written through those disjoint leases; `live` is
// atomic. Chunks are reused only after `live` returns to zero.
unsafe impl Sync for ChunkBuf {}
unsafe impl Send for ChunkBuf {}

/// Owning handle to one bump-allocated range. Dropping it decrements the
/// chunk's live count; the `Arc` keeps the memory valid even if the lease
/// outlives the arena scope (or the thread).
pub struct Lease {
    ptr: *mut f32,
    len: usize,
    keep: Arc<ChunkBuf>,
}

// Safety: the lease exclusively owns its disjoint range (see `ChunkBuf`);
// shared references only permit reads, mutation requires `&mut`.
unsafe impl Send for Lease {}
unsafe impl Sync for Lease {}

impl Lease {
    #[inline]
    pub(crate) fn slice(&self) -> &[f32] {
        // Safety: `ptr..ptr+len` is a live, initialized, exclusively-owned
        // range of the Arc'd chunk.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }

    #[inline]
    pub(crate) fn slice_mut(&mut self) -> &mut [f32] {
        // Safety: as `slice`, plus `&mut self` guarantees exclusivity.
        unsafe { std::slice::from_raw_parts_mut(self.ptr, self.len) }
    }
}

impl Drop for Lease {
    fn drop(&mut self) {
        self.keep.live.fetch_sub(1, Ordering::Release);
    }
}

impl std::fmt::Debug for Lease {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Lease").field("len", &self.len).finish()
    }
}

#[derive(Default)]
struct ArenaState {
    chunks: Vec<Arc<ChunkBuf>>,
    /// Chunk currently being bumped.
    cur: usize,
    /// Bump offset (floats) into `chunks[cur]`.
    offset: usize,
    /// `scoped` nesting depth; allocation is active while > 0.
    depth: usize,
    /// Bytes bump-allocated in the current scope generation.
    scope_bytes: u64,
    allocs: u64,
    heap_allocs: u64,
    resets: u64,
    retires: u64,
    hwm_bytes: u64,
}

impl ArenaState {
    fn live(&self) -> usize {
        self.chunks
            .iter()
            .map(|c| c.live.load(Ordering::Acquire))
            .sum()
    }

    /// Rewinds the bump offset for a new batch. Chunks with outstanding
    /// leases are retired (their memory survives via the leases' `Arc`s) so
    /// a leaked matrix can never alias a new allocation.
    fn begin_scope(&mut self) {
        if self.live() > 0 {
            self.chunks.clear();
            self.retires += 1;
        }
        self.cur = 0;
        self.offset = 0;
        self.scope_bytes = 0;
        self.resets += 1;
    }

    fn bump(&mut self, len: usize) -> Lease {
        let rounded = len.div_ceil(ALIGN_FLOATS) * ALIGN_FLOATS;
        // Advance through retained chunks until one fits.
        loop {
            match self.chunks.get(self.cur) {
                Some(c) => {
                    // Safety: sizing only; contents untouched.
                    let cap = unsafe { (&*c.data.get()).len() };
                    if self.offset + rounded <= cap {
                        break;
                    }
                    self.cur += 1;
                    self.offset = 0;
                }
                None => {
                    let size = rounded.max(CHUNK_FLOATS);
                    self.chunks.push(Arc::new(ChunkBuf {
                        data: UnsafeCell::new(vec![0.0f32; size].into_boxed_slice()),
                        live: AtomicUsize::new(0),
                    }));
                    self.heap_allocs += 1;
                    self.offset = 0;
                    break;
                }
            }
        }
        let chunk = &self.chunks[self.cur];
        // Safety: the range [offset, offset+len) is in bounds and disjoint
        // from every previously handed-out lease of this generation.
        let ptr = unsafe { (*chunk.data.get()).as_mut_ptr().add(self.offset) };
        chunk.live.fetch_add(1, Ordering::AcqRel);
        self.offset += rounded;
        self.allocs += 1;
        self.scope_bytes += (rounded * 4) as u64;
        self.hwm_bytes = self.hwm_bytes.max(self.scope_bytes);
        Lease {
            ptr,
            len,
            keep: Arc::clone(chunk),
        }
    }
}

thread_local! {
    static ARENA: RefCell<ArenaState> = RefCell::new(ArenaState::default());
    static ARENA_OVERRIDE: Cell<Option<bool>> = const { Cell::new(None) };
}

fn env_enabled() -> bool {
    static ENV: OnceLock<bool> = OnceLock::new();
    *ENV.get_or_init(|| {
        !matches!(
            std::env::var("UAE_EXEC_ARENA").as_deref(),
            Ok("off") | Ok("0") | Ok("false")
        )
    })
}

/// Whether [`scoped`] activates the arena: the per-thread override if set
/// (see [`with_arena`]), else `UAE_EXEC_ARENA` (default on).
pub fn arena_enabled() -> bool {
    ARENA_OVERRIDE.with(Cell::get).unwrap_or_else(env_enabled)
}

/// Runs `f` with the arena force-enabled or force-disabled on this thread
/// (scoped, panic-safe) — for tests and benches.
pub fn with_arena<R>(enabled: bool, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<bool>);
    impl Drop for Restore {
        fn drop(&mut self) {
            ARENA_OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let _guard = Restore(ARENA_OVERRIDE.with(|c| c.replace(Some(enabled))));
    f()
}

/// Runs `f` with bump allocation active on this thread. The outermost entry
/// rewinds the arena (see the module docs for the reset/retire rules);
/// nested entries are transparent. When the arena is disabled this is a
/// plain call.
pub fn scoped<R>(f: impl FnOnce() -> R) -> R {
    if !arena_enabled() {
        return f();
    }
    struct Guard;
    impl Drop for Guard {
        fn drop(&mut self) {
            let _ = ARENA.try_with(|a| {
                if let Ok(mut a) = a.try_borrow_mut() {
                    a.depth -= 1;
                }
            });
        }
    }
    ARENA.with(|a| {
        let mut a = a.borrow_mut();
        if a.depth == 0 {
            a.begin_scope();
        }
        a.depth += 1;
    });
    let _guard = Guard;
    f()
}

/// Runs `f` with bump allocation suspended (allocations fall back to the
/// scratch pool) even inside a [`scoped`] region — for values that must
/// outlive the batch.
pub fn suspended<R>(f: impl FnOnce() -> R) -> R {
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            let _ = ARENA.try_with(|a| {
                if let Ok(mut a) = a.try_borrow_mut() {
                    a.depth = self.0;
                }
            });
        }
    }
    let _guard = Restore(ARENA.with(|a| {
        let mut a = a.borrow_mut();
        std::mem::take(&mut a.depth)
    }));
    f()
}

/// A bump-allocated lease of `len` floats (unspecified contents), or `None`
/// when no scope is active on this thread (or `len == 0`). Called by
/// `Matrix::uninit`.
pub(crate) fn alloc(len: usize) -> Option<Lease> {
    if len == 0 {
        return None;
    }
    ARENA.with(|a| {
        let mut a = a.borrow_mut();
        if a.depth == 0 {
            return None;
        }
        Some(a.bump(len))
    })
}

/// Arena counters for the calling thread.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// Bump allocations served (one per arena-backed matrix).
    pub allocs: u64,
    /// Chunk allocations that hit the system allocator. Zero per batch once
    /// a serving thread is warm — the CI-gated number.
    pub heap_allocs: u64,
    /// Scope generations started (≈ batches scored).
    pub resets: u64,
    /// Resets that found leftover live leases and had to retire chunks
    /// instead of reusing them (0 in a well-behaved serving loop).
    pub retires: u64,
    /// High-water mark of bytes bump-allocated within one scope generation.
    pub hwm_bytes: u64,
    /// Leases currently outstanding.
    pub live: usize,
}

/// Snapshot of this thread's arena counters.
pub fn arena_stats() -> ArenaStats {
    ARENA.with(|a| {
        let a = a.borrow();
        ArenaStats {
            allocs: a.allocs,
            heap_allocs: a.heap_allocs,
            resets: a.resets,
            retires: a.retires,
            hwm_bytes: a.hwm_bytes,
            live: a.live(),
        }
    })
}

/// Zeroes this thread's arena counters (retained chunks are kept, so a
/// warmed-up thread measures `heap_allocs == 0` from here on).
pub fn reset_arena_stats() {
    ARENA.with(|a| {
        let mut a = a.borrow_mut();
        a.allocs = 0;
        a.heap_allocs = 0;
        a.resets = 0;
        a.retires = 0;
        a.hwm_bytes = 0;
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;

    #[test]
    fn alloc_outside_scope_is_none() {
        std::thread::scope(|s| {
            s.spawn(|| {
                assert!(alloc(16).is_none());
            });
        });
    }

    #[test]
    fn scoped_allocations_bump_and_reset() {
        std::thread::scope(|s| {
            s.spawn(|| {
                reset_arena_stats();
                scoped(|| {
                    let a = Matrix::zeros(8, 8);
                    let b = Matrix::filled(4, 4, 2.0);
                    assert_eq!(a.data()[0], 0.0);
                    assert_eq!(b.data()[0], 2.0);
                });
                let s1 = arena_stats();
                assert_eq!(s1.allocs, 2);
                assert_eq!(s1.heap_allocs, 1, "first batch allocates one chunk");
                assert_eq!(s1.live, 0, "matrices dropped inside the scope");
                // Second batch: same chunk reused, no heap traffic.
                scoped(|| {
                    let _a = Matrix::zeros(8, 8);
                });
                let s2 = arena_stats();
                assert_eq!(s2.heap_allocs, 1, "steady state: zero new chunks");
                assert_eq!(s2.resets, 2);
                assert_eq!(s2.retires, 0);
            });
        });
    }

    #[test]
    fn values_survive_scope_exit_and_leak_forces_retire() {
        std::thread::scope(|s| {
            s.spawn(|| {
                reset_arena_stats();
                let kept = scoped(|| Matrix::filled(16, 16, 7.0));
                // The lease outlives the scope: contents intact.
                assert!(kept.data().iter().all(|&v| v == 7.0));
                assert_eq!(arena_stats().live, 1);
                // Entering a new scope with a live lease must retire the
                // chunk, never overwrite it.
                scoped(|| {
                    let noise = Matrix::filled(16, 16, -3.0);
                    assert!(kept.data().iter().all(|&v| v == 7.0));
                    drop(noise);
                });
                assert_eq!(arena_stats().retires, 1);
                drop(kept);
                assert_eq!(arena_stats().live, 0);
            });
        });
    }

    #[test]
    fn dropping_before_next_scope_reuses_cleanly() {
        std::thread::scope(|s| {
            s.spawn(|| {
                reset_arena_stats();
                for _ in 0..5 {
                    let out = scoped(|| Matrix::filled(32, 32, 1.5));
                    assert!(out.data().iter().all(|&v| v == 1.5));
                    drop(out); // dead before the next scope entry
                }
                let st = arena_stats();
                assert_eq!(st.retires, 0);
                assert_eq!(st.heap_allocs, 1);
            });
        });
    }

    #[test]
    fn suspended_falls_back_to_heap() {
        std::thread::scope(|s| {
            s.spawn(|| {
                reset_arena_stats();
                scoped(|| {
                    let before = arena_stats().allocs;
                    let m = suspended(|| Matrix::zeros(8, 8));
                    assert_eq!(arena_stats().allocs, before, "suspended: no bump");
                    drop(m);
                    let n = Matrix::zeros(8, 8);
                    assert_eq!(arena_stats().allocs, before + 1);
                    drop(n);
                });
            });
        });
    }

    #[test]
    fn oversize_requests_get_dedicated_chunks() {
        std::thread::scope(|s| {
            s.spawn(|| {
                reset_arena_stats();
                scoped(|| {
                    let big = Matrix::zeros(2048, 256); // 2 MiB > chunk size
                    assert_eq!(big.len(), 2048 * 256);
                });
                assert_eq!(arena_stats().heap_allocs, 1);
                scoped(|| {
                    let _big = Matrix::zeros(2048, 256);
                });
                assert_eq!(arena_stats().heap_allocs, 1, "oversize chunk reused");
            });
        });
    }

    #[test]
    fn with_arena_override_is_scoped() {
        std::thread::scope(|s| {
            s.spawn(|| {
                with_arena(false, || {
                    scoped(|| assert!(alloc(8).is_none()));
                });
                with_arena(true, || {
                    scoped(|| assert!(alloc(8).is_some()));
                });
            });
        });
    }
}
