//! Eager reverse-mode automatic differentiation.
//!
//! A [`Tape`] is rebuilt for every mini-batch. Each op computes its value at
//! construction time and records an enum node; [`Tape::backward`] walks the
//! nodes in reverse topological order (which is simply reverse insertion
//! order) and accumulates gradients, writing parameter gradients into the
//! [`Params`] arena.
//!
//! The op set is deliberately small: exactly what the paper's models need
//! (MLPs, GRUs, FM interactions, DCN cross layers, AutoInt field
//! self-attention) plus one fused, weight-carrying binary-cross-entropy loss
//! that expresses *every* risk in the paper — PN (Eq. 4), NDB (Eq. 5), the
//! unbiased attention risk (Eq. 16), the unbiased propensity risk (Eq. 17)
//! and the downstream re-weighted recommendation risk (Eq. 18) — as different
//! per-example positive/negative weights.

use crate::backend;
use crate::exec::kernels;
use crate::matrix::Matrix;
use crate::params::{ParamId, Params};

/// Handle to a node on the tape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Var(usize);

/// Numerically stable `ln(1 + e^x)`.
#[inline]
pub fn softplus(x: f32) -> f32 {
    x.max(0.0) + (-x.abs()).exp().ln_1p()
}

/// Numerically stable logistic sigmoid.
#[inline]
pub fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

#[derive(Debug)]
enum Op {
    /// Constant leaf (no gradient flows out).
    Input,
    /// Trainable leaf; backward accumulates into `Params`.
    Param(ParamId),
    /// Rows gathered from a (possibly large) parameter table; backward
    /// scatter-adds into the table's gradient without materialising it.
    GatherParam {
        id: ParamId,
        rows: Vec<usize>,
    },
    MatMul(Var, Var),
    Add(Var, Var),
    Sub(Var, Var),
    Mul(Var, Var),
    /// `(m×n) + (1×n)` broadcast over rows.
    AddRow(Var, Var),
    /// Fused dense layer `x·W + b` (bias seeds the matmul accumulators).
    Linear {
        x: Var,
        w: Var,
        b: Var,
    },
    /// `(m×n) ∘ (m×1)` broadcast over columns.
    MulCol(Var, Var),
    /// `y = mul·x + add` element-wise; only the slope matters for backward.
    Affine {
        x: Var,
        mul: f32,
    },
    Sigmoid(Var),
    Tanh(Var),
    Relu(Var),
    ConcatCols(Vec<Var>),
    SliceCols {
        x: Var,
        start: usize,
        end: usize,
    },
    /// Row-major reinterpretation; data order unchanged.
    Reshape(Var),
    MeanAll(Var),
    SumAll(Var),
    /// `(m×n) → (m×1)` summing each row.
    RowSum(Var),
    SoftmaxRows(Var),
    /// Batched product of 3-D tensors packed as 2-D (see [`Tape::batched_matmul`]).
    BatMatMul {
        a: Var,
        b: Var,
        batch: usize,
        trans_b: bool,
    },
    /// Fused weighted binary cross-entropy over logits; see
    /// [`Tape::weighted_bce`].
    WeightedBce {
        logits: Var,
        pos_w: Vec<f32>,
        neg_w: Vec<f32>,
        divisor: f32,
        /// Which elements were clamped in the forward pass (zero gradient).
        clamped: Vec<bool>,
    },
}

struct Node {
    value: Matrix,
    op: Op,
}

/// An autodiff tape. Build it per batch, call ops, then [`Tape::backward`].
#[derive(Default)]
pub struct Tape {
    nodes: Vec<Node>,
}

impl Tape {
    pub fn new() -> Self {
        Tape { nodes: Vec::new() }
    }

    fn push(&mut self, value: Matrix, op: Op) -> Var {
        self.nodes.push(Node { value, op });
        Var(self.nodes.len() - 1)
    }

    /// The forward value of a node.
    pub fn value(&self, v: Var) -> &Matrix {
        &self.nodes[v.0].value
    }

    /// Number of nodes currently on the tape.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Drops all nodes but keeps the tape's node arena, so a hot loop can
    /// reuse one `Tape` per batch. Dropped node values return their buffers
    /// to the scratch pool.
    pub fn clear(&mut self) {
        self.nodes.clear();
    }

    // ---------------------------------------------------------------- leaves

    /// A constant leaf (inputs, masks, labels-as-features, …).
    pub fn input(&mut self, value: Matrix) -> Var {
        self.push(value, Op::Input)
    }

    /// A trainable-parameter leaf; its value is snapshotted from `params`.
    pub fn param(&mut self, params: &Params, id: ParamId) -> Var {
        self.push(params.value(id).clone(), Op::Param(id))
    }

    /// Gathers `rows` of the parameter table `id` (embedding lookup).
    pub fn gather(&mut self, params: &Params, id: ParamId, rows: &[usize]) -> Var {
        let value = params.value(id).gather_rows(rows);
        self.push(
            value,
            Op::GatherParam {
                id,
                rows: rows.to_vec(),
            },
        )
    }

    // ------------------------------------------------------------------- ops

    /// Matrix product.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let value = kernels::matmul(self.value(a), self.value(b));
        self.push(value, Op::MatMul(a, b))
    }

    /// Element-wise sum of two same-shape nodes.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let value = kernels::add(self.value(a), self.value(b));
        self.push(value, Op::Add(a, b))
    }

    /// Element-wise difference.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let value = kernels::sub(self.value(a), self.value(b));
        self.push(value, Op::Sub(a, b))
    }

    /// Element-wise (Hadamard) product. `a` and `b` may be the same node.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let value = kernels::mul(self.value(a), self.value(b));
        self.push(value, Op::Mul(a, b))
    }

    /// Element-wise square (`mul(x, x)` with correct double-accumulation).
    pub fn square(&mut self, x: Var) -> Var {
        self.mul(x, x)
    }

    /// Adds a `1×n` row vector to every row of an `m×n` matrix (bias add).
    pub fn add_row(&mut self, a: Var, row: Var) -> Var {
        let value = kernels::add_row(self.value(a), self.value(row));
        self.push(value, Op::AddRow(a, row))
    }

    /// Fused dense layer `x·W + b` — one op, one kernel pass; the bias seeds
    /// the matmul accumulators so no broadcast-add copy is made.
    pub fn linear(&mut self, x: Var, w: Var, b: Var) -> Var {
        let value = kernels::linear(self.value(x), self.value(w), self.value(b));
        self.push(value, Op::Linear { x, w, b })
    }

    /// Multiplies every row of an `m×n` matrix by the matching entry of an
    /// `m×1` column vector (per-sample mask/weight).
    pub fn mul_col(&mut self, a: Var, col: Var) -> Var {
        let value = kernels::mul_col(self.value(a), self.value(col));
        self.push(value, Op::MulCol(a, col))
    }

    /// `y = mul·x + add` element-wise.
    pub fn affine(&mut self, x: Var, mul: f32, add: f32) -> Var {
        let value = kernels::affine(self.value(x), mul, add);
        self.push(value, Op::Affine { x, mul })
    }

    /// `1 − x` element-wise.
    pub fn one_minus(&mut self, x: Var) -> Var {
        self.affine(x, -1.0, 1.0)
    }

    /// `s · x`.
    pub fn scale(&mut self, x: Var, s: f32) -> Var {
        self.affine(x, s, 0.0)
    }

    pub fn sigmoid(&mut self, x: Var) -> Var {
        let value = kernels::sigmoid_map(self.value(x));
        self.push(value, Op::Sigmoid(x))
    }

    pub fn tanh(&mut self, x: Var) -> Var {
        let value = kernels::tanh_map(self.value(x));
        self.push(value, Op::Tanh(x))
    }

    pub fn relu(&mut self, x: Var) -> Var {
        let value = kernels::relu_map(self.value(x));
        self.push(value, Op::Relu(x))
    }

    /// Horizontal concatenation.
    pub fn concat_cols(&mut self, parts: &[Var]) -> Var {
        let values: Vec<&Matrix> = parts.iter().map(|&p| self.value(p)).collect();
        let value = kernels::concat_cols(&values);
        self.push(value, Op::ConcatCols(parts.to_vec()))
    }

    /// Copies out columns `[start, end)`.
    pub fn slice_cols(&mut self, x: Var, start: usize, end: usize) -> Var {
        let value = kernels::slice_cols(self.value(x), start, end);
        self.push(value, Op::SliceCols { x, start, end })
    }

    /// Row-major reshape (a pooled copy; data order unchanged).
    pub fn reshape(&mut self, x: Var, rows: usize, cols: usize) -> Var {
        let value = kernels::reshape(self.value(x), rows, cols);
        self.push(value, Op::Reshape(x))
    }

    /// Mean of all elements (1×1).
    pub fn mean_all(&mut self, x: Var) -> Var {
        let value = Matrix::scalar(self.value(x).mean());
        self.push(value, Op::MeanAll(x))
    }

    /// Sum of all elements (1×1).
    pub fn sum_all(&mut self, x: Var) -> Var {
        let value = Matrix::scalar(self.value(x).sum());
        self.push(value, Op::SumAll(x))
    }

    /// Per-row sum: `(m×n) → (m×1)`.
    pub fn row_sum(&mut self, x: Var) -> Var {
        let value = kernels::row_sum(self.value(x));
        self.push(value, Op::RowSum(x))
    }

    /// Row-wise softmax.
    pub fn softmax_rows(&mut self, x: Var) -> Var {
        let value = kernels::softmax_rows(self.value(x));
        self.push(value, Op::SoftmaxRows(x))
    }

    /// Batched matrix product over 3-D tensors packed as 2-D matrices.
    ///
    /// `a` packs `(batch, m, p)` as `(batch·m) × p`.
    /// * `trans_b == false`: `b` packs `(batch, p, n)` as `(batch·p) × n`,
    ///   the result packs `(batch, m, n)` as `(batch·m) × n`.
    /// * `trans_b == true`: `b` packs `(batch, n, p)` as `(batch·n) × p`,
    ///   computing `A·Bᵀ` per batch slice.
    pub fn batched_matmul(&mut self, a: Var, b: Var, batch: usize, trans_b: bool) -> Var {
        let out = kernels::batched_matmul(self.value(a), self.value(b), batch, trans_b);
        self.push(
            out,
            Op::BatMatMul {
                a,
                b,
                batch,
                trans_b,
            },
        )
    }

    /// Fused weighted binary cross-entropy over logits.
    ///
    /// For logits `z` (an `m×1` column), per-example weights `pos_w`/`neg_w`
    /// and a `divisor` (typically the number of *valid*, unpadded examples),
    /// computes
    ///
    /// ```text
    ///   L = (1/divisor) · Σ_i  max(0, pos_w[i]·ℓ⁺(z_i) + neg_w[i]·ℓ⁻(z_i))
    /// ```
    ///
    /// with `ℓ⁺(z) = softplus(−z) = −log σ(z)` and `ℓ⁻(z) = softplus(z) =
    /// −log(1−σ(z))`. The `max(0, ·)` clamp is applied only when
    /// `clamp_nonneg` is set — this is the per-example non-negative-risk
    /// correction the paper adopts ("risk-clipped technique", §VI-A),
    /// needed because the unbiased PU risks put the *negative* coefficient
    /// `1 − e/p̂` on active examples. Clamped elements propagate no gradient.
    pub fn weighted_bce(
        &mut self,
        logits: Var,
        pos_w: &[f32],
        neg_w: &[f32],
        divisor: f32,
        clamp_nonneg: bool,
    ) -> Var {
        let z = self.value(logits);
        assert_eq!(z.cols(), 1, "weighted_bce expects an m×1 logit column");
        assert_eq!(z.rows(), pos_w.len());
        assert_eq!(z.rows(), neg_w.len());
        assert!(divisor > 0.0, "weighted_bce divisor must be positive");
        let mut total = 0.0f64;
        let mut clamped = vec![false; z.rows()];
        for i in 0..z.rows() {
            let zi = z.get(i, 0);
            let li = pos_w[i] * softplus(-zi) + neg_w[i] * softplus(zi);
            if clamp_nonneg && li < 0.0 {
                clamped[i] = true;
            } else {
                total += li as f64;
            }
        }
        let value = Matrix::scalar((total / divisor as f64) as f32);
        self.push(
            value,
            Op::WeightedBce {
                logits,
                pos_w: pos_w.to_vec(),
                neg_w: neg_w.to_vec(),
                divisor,
                clamped,
            },
        )
    }

    // -------------------------------------------------------------- backward

    /// Reverse pass from `loss` (which must be 1×1), accumulating parameter
    /// gradients into `params.grads`. Call `params.zero_grads()` first unless
    /// you intend to accumulate across batches.
    pub fn backward(&self, loss: Var, params: &mut Params) {
        assert_eq!(
            self.value(loss).shape(),
            (1, 1),
            "backward from a non-scalar loss"
        );
        let n = self.nodes.len();
        let mut grads: Vec<Option<Matrix>> = (0..n).map(|_| None).collect();
        grads[loss.0] = Some(Matrix::scalar(1.0));

        // Helper: accumulate `delta` into `grads[target]`. Takes ownership —
        // the common first-visit case stores the buffer instead of cloning
        // it; on later visits the delta's buffer returns to the scratch pool.
        fn acc(grads: &mut [Option<Matrix>], target: usize, delta: Matrix) {
            match &mut grads[target] {
                Some(g) => g.add_assign(&delta),
                slot @ None => *slot = Some(delta),
            }
        }

        for idx in (0..n).rev() {
            let g = match grads[idx].take() {
                Some(g) => g,
                None => continue,
            };
            match &self.nodes[idx].op {
                Op::Input => {}
                Op::Param(id) => {
                    params.grad_mut(*id).add_assign(&g);
                }
                Op::GatherParam { id, rows } => {
                    let table_grad = params.grad_mut(*id);
                    for (i, &row) in rows.iter().enumerate() {
                        for (t, &s) in table_grad.row_mut(row).iter_mut().zip(g.row(i)) {
                            *t += s;
                        }
                    }
                }
                Op::MatMul(a, b) => {
                    let ga = g.matmul_nt(&self.nodes[b.0].value);
                    let gb = self.nodes[a.0].value.matmul_tn(&g);
                    acc(&mut grads, a.0, ga);
                    acc(&mut grads, b.0, gb);
                }
                Op::Linear { x, w, b } => {
                    let gx = g.matmul_nt(&self.nodes[w.0].value);
                    let gw = self.nodes[x.0].value.matmul_tn(&g);
                    let mut gb = Matrix::zeros(1, g.cols());
                    for r in 0..g.rows() {
                        for (o, &v) in gb.row_mut(0).iter_mut().zip(g.row(r)) {
                            *o += v;
                        }
                    }
                    acc(&mut grads, x.0, gx);
                    acc(&mut grads, w.0, gw);
                    acc(&mut grads, b.0, gb);
                }
                Op::Add(a, b) => {
                    acc(&mut grads, a.0, g.clone());
                    acc(&mut grads, b.0, g);
                }
                Op::Sub(a, b) => {
                    let mut neg = g.clone();
                    neg.scale_in_place(-1.0);
                    acc(&mut grads, a.0, g);
                    acc(&mut grads, b.0, neg);
                }
                Op::Mul(a, b) => {
                    let ga = g.zip_map(&self.nodes[b.0].value, |x, y| x * y);
                    let mut gb = g;
                    gb.zip_apply(&self.nodes[a.0].value, |x, y| x * y);
                    acc(&mut grads, a.0, ga);
                    acc(&mut grads, b.0, gb);
                }
                Op::AddRow(a, row) => {
                    let mut grow = Matrix::zeros(1, g.cols());
                    for r in 0..g.rows() {
                        for (o, &x) in grow.row_mut(0).iter_mut().zip(g.row(r)) {
                            *o += x;
                        }
                    }
                    acc(&mut grads, a.0, g);
                    acc(&mut grads, row.0, grow);
                }
                Op::MulCol(a, col) => {
                    let av = &self.nodes[a.0].value;
                    let mut gcol = Matrix::uninit(g.rows(), 1);
                    for r in 0..g.rows() {
                        let dot: f32 = g.row(r).iter().zip(av.row(r)).map(|(&x, &y)| x * y).sum();
                        gcol.set(r, 0, dot);
                    }
                    let cv = &self.nodes[col.0].value;
                    let mut ga = g;
                    for r in 0..ga.rows() {
                        let s = cv.get(r, 0);
                        for v in ga.row_mut(r) {
                            *v *= s;
                        }
                    }
                    acc(&mut grads, a.0, ga);
                    acc(&mut grads, col.0, gcol);
                }
                Op::Affine { x, mul, .. } => {
                    let mut gx = g;
                    gx.scale_in_place(*mul);
                    acc(&mut grads, x.0, gx);
                }
                Op::Sigmoid(x) => {
                    let mut gx = g;
                    gx.zip_apply(&self.nodes[idx].value, |gi, yi| gi * yi * (1.0 - yi));
                    acc(&mut grads, x.0, gx);
                }
                Op::Tanh(x) => {
                    let mut gx = g;
                    gx.zip_apply(&self.nodes[idx].value, |gi, yi| gi * (1.0 - yi * yi));
                    acc(&mut grads, x.0, gx);
                }
                Op::Relu(x) => {
                    let mut gx = g;
                    gx.zip_apply(
                        &self.nodes[x.0].value,
                        |gi, xi| if xi > 0.0 { gi } else { 0.0 },
                    );
                    acc(&mut grads, x.0, gx);
                }
                Op::ConcatCols(parts) => {
                    let mut offset = 0;
                    for &p in parts {
                        let width = self.nodes[p.0].value.cols();
                        let gp = g.slice_cols(offset, offset + width);
                        acc(&mut grads, p.0, gp);
                        offset += width;
                    }
                }
                Op::SliceCols { x, start, end } => {
                    let xv = &self.nodes[x.0].value;
                    let mut gx = Matrix::zeros(xv.rows(), xv.cols());
                    for r in 0..g.rows() {
                        gx.row_mut(r)[*start..*end].copy_from_slice(g.row(r));
                    }
                    acc(&mut grads, x.0, gx);
                }
                Op::Reshape(x) => {
                    let xv = &self.nodes[x.0].value;
                    let mut gx = Matrix::uninit(xv.rows(), xv.cols());
                    gx.data_mut().copy_from_slice(g.data());
                    acc(&mut grads, x.0, gx);
                }
                Op::MeanAll(x) => {
                    let xv = &self.nodes[x.0].value;
                    let gi = g.item() / xv.len() as f32;
                    let gx = Matrix::filled(xv.rows(), xv.cols(), gi);
                    acc(&mut grads, x.0, gx);
                }
                Op::SumAll(x) => {
                    let xv = &self.nodes[x.0].value;
                    let gx = Matrix::filled(xv.rows(), xv.cols(), g.item());
                    acc(&mut grads, x.0, gx);
                }
                Op::RowSum(x) => {
                    let xv = &self.nodes[x.0].value;
                    let gx = Matrix::from_fn(xv.rows(), xv.cols(), |r, _| g.get(r, 0));
                    acc(&mut grads, x.0, gx);
                }
                Op::SoftmaxRows(x) => {
                    let s = &self.nodes[idx].value;
                    let mut gx = Matrix::uninit(s.rows(), s.cols());
                    for r in 0..s.rows() {
                        let dot: f32 = g.row(r).iter().zip(s.row(r)).map(|(&a, &b)| a * b).sum();
                        for c in 0..s.cols() {
                            gx.set(r, c, s.get(r, c) * (g.get(r, c) - dot));
                        }
                    }
                    acc(&mut grads, x.0, gx);
                }
                Op::BatMatMul {
                    a,
                    b,
                    batch,
                    trans_b,
                } => {
                    let av = &self.nodes[a.0].value;
                    let bv = &self.nodes[b.0].value;
                    let m = av.rows() / batch;
                    let p = av.cols();
                    let n = if *trans_b {
                        bv.rows() / batch
                    } else {
                        bv.cols()
                    };
                    let mut ga = Matrix::uninit(av.rows(), av.cols());
                    let mut gb = Matrix::uninit(bv.rows(), bv.cols());
                    backend::batched_matmul_grads(
                        *batch,
                        m,
                        p,
                        n,
                        *trans_b,
                        av.data(),
                        bv.data(),
                        g.data(),
                        ga.data_mut(),
                        gb.data_mut(),
                    );
                    acc(&mut grads, a.0, ga);
                    acc(&mut grads, b.0, gb);
                }
                Op::WeightedBce {
                    logits,
                    pos_w,
                    neg_w,
                    divisor,
                    clamped,
                    ..
                } => {
                    let z = &self.nodes[logits.0].value;
                    let upstream = g.item() / divisor;
                    let gx = Matrix::from_fn(z.rows(), 1, |i, _| {
                        if clamped[i] {
                            0.0
                        } else {
                            let s = sigmoid(z.get(i, 0));
                            upstream * ((pos_w[i] + neg_w[i]) * s - pos_w[i])
                        }
                    });
                    acc(&mut grads, logits.0, gx);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softplus_matches_reference() {
        for &x in &[-50.0f32, -2.0, 0.0, 1.5, 30.0] {
            let reference = (1.0f64 + (x as f64).exp()).ln() as f32;
            if x < 20.0 {
                assert!((softplus(x) - reference).abs() < 1e-5, "x={x}");
            } else {
                assert!((softplus(x) - x).abs() < 1e-5);
            }
        }
        assert!(softplus(-1000.0) >= 0.0);
        assert!(softplus(1000.0).is_finite());
    }

    #[test]
    fn sigmoid_is_stable_at_extremes() {
        assert_eq!(sigmoid(1000.0), 1.0);
        assert_eq!(sigmoid(-1000.0), 0.0);
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-7);
    }

    #[test]
    fn forward_values_are_computed_eagerly() {
        let mut tape = Tape::new();
        let x = tape.input(Matrix::row_vector(&[1.0, 2.0]));
        let y = tape.affine(x, 2.0, 1.0);
        assert_eq!(tape.value(y).data(), &[3.0, 5.0]);
        let z = tape.sigmoid(x);
        assert!((tape.value(z).data()[0] - sigmoid(1.0)).abs() < 1e-6);
    }

    #[test]
    fn linear_regression_gradient_is_exact() {
        // loss = mean((x·w)²) for known x, w — gradient has a closed form.
        let mut params = Params::new();
        let w = params.add("w", Matrix::col_vector(&[2.0]));
        let mut tape = Tape::new();
        let x = tape.input(Matrix::col_vector(&[1.0, 3.0]));
        let wv = tape.param(&params, w);
        let pred = tape.matmul(x, wv); // 2×1
        let sq = tape.square(pred);
        let loss = tape.mean_all(sq);
        // loss = ((1·2)² + (3·2)²)/2 = (4 + 36)/2 = 20
        assert!((tape.value(loss).item() - 20.0).abs() < 1e-5);
        tape.backward(loss, &mut params);
        // dL/dw = mean(2·(x w)·x) = (2·2·1 + 2·6·3)/2 = 20
        assert!((params.grad(w).item() - 20.0).abs() < 1e-4);
    }

    #[test]
    fn gather_param_scatter_adds() {
        let mut params = Params::new();
        let table = params.add("emb", Matrix::from_vec(3, 2, vec![1., 2., 3., 4., 5., 6.]));
        let mut tape = Tape::new();
        let e = tape.gather(&params, table, &[0, 2, 0]);
        assert_eq!(tape.value(e).row(0), &[1., 2.]);
        assert_eq!(tape.value(e).row(1), &[5., 6.]);
        let s = tape.sum_all(e);
        tape.backward(s, &mut params);
        // Row 0 was gathered twice → grad 2; row 1 never → 0; row 2 once → 1.
        assert_eq!(params.grad(table).row(0), &[2.0, 2.0]);
        assert_eq!(params.grad(table).row(1), &[0.0, 0.0]);
        assert_eq!(params.grad(table).row(2), &[1.0, 1.0]);
    }

    #[test]
    fn weighted_bce_matches_manual_log_loss() {
        // With pos_w = y and neg_w = 1−y this is plain BCE-with-logits.
        let mut params = Params::new();
        let mut tape = Tape::new();
        let z = tape.input(Matrix::col_vector(&[0.3, -1.2]));
        let loss = tape.weighted_bce(z, &[1.0, 0.0], &[0.0, 1.0], 2.0, false);
        let expected = (softplus(-0.3) + softplus(-1.2)) / 2.0;
        assert!((tape.value(loss).item() - expected).abs() < 1e-6);
        tape.backward(loss, &mut params); // no params; must not panic
    }

    #[test]
    fn weighted_bce_clamps_negative_elements() {
        let mut tape = Tape::new();
        let z = tape.input(Matrix::col_vector(&[0.0]));
        // pos_w=2, neg_w=-3 at z=0: 2·ln2 − 3·ln2 = −ln2 < 0 → clamped to 0.
        let clamped = tape.weighted_bce(z, &[2.0], &[-3.0], 1.0, true);
        assert_eq!(tape.value(clamped).item(), 0.0);
        let z2 = tape.input(Matrix::col_vector(&[0.0]));
        let raw = tape.weighted_bce(z2, &[2.0], &[-3.0], 1.0, false);
        assert!(tape.value(raw).item() < 0.0);
    }

    #[test]
    fn batched_matmul_matches_per_slice_matmul() {
        let mut rng = crate::rng::Rng::seed_from_u64(5);
        let batch = 3;
        let (m, p, n) = (2, 4, 5);
        let a = Matrix::randn(batch * m, p, 1.0, &mut rng);
        let b = Matrix::randn(batch * p, n, 1.0, &mut rng);
        let mut tape = Tape::new();
        let av = tape.input(a.clone());
        let bv = tape.input(b.clone());
        let c = tape.batched_matmul(av, bv, batch, false);
        for s in 0..batch {
            let a_slice = a.gather_rows(&(s * m..(s + 1) * m).collect::<Vec<_>>());
            let b_slice = b.gather_rows(&(s * p..(s + 1) * p).collect::<Vec<_>>());
            let expect = a_slice.matmul(&b_slice);
            for i in 0..m {
                for j in 0..n {
                    assert!((tape.value(c).get(s * m + i, j) - expect.get(i, j)).abs() < 1e-5);
                }
            }
        }
    }

    #[test]
    fn batched_matmul_trans_b_matches_per_slice() {
        let mut rng = crate::rng::Rng::seed_from_u64(6);
        let batch = 2;
        let (m, p, n) = (3, 4, 3);
        let a = Matrix::randn(batch * m, p, 1.0, &mut rng);
        let b = Matrix::randn(batch * n, p, 1.0, &mut rng);
        let mut tape = Tape::new();
        let av = tape.input(a.clone());
        let bv = tape.input(b.clone());
        let c = tape.batched_matmul(av, bv, batch, true);
        for s in 0..batch {
            let a_slice = a.gather_rows(&(s * m..(s + 1) * m).collect::<Vec<_>>());
            let b_slice = b.gather_rows(&(s * n..(s + 1) * n).collect::<Vec<_>>());
            let expect = a_slice.matmul_nt(&b_slice);
            for i in 0..m {
                for j in 0..n {
                    assert!((tape.value(c).get(s * m + i, j) - expect.get(i, j)).abs() < 1e-5);
                }
            }
        }
    }

    #[test]
    fn linear_matches_matmul_add_row() {
        let mut rng = crate::rng::Rng::seed_from_u64(7);
        let x = Matrix::randn(4, 3, 1.0, &mut rng);
        let w = Matrix::randn(3, 2, 1.0, &mut rng);
        let b = Matrix::randn(1, 2, 1.0, &mut rng);
        let mut params = Params::new();
        let wid = params.add("w", w);
        let bid = params.add("b", b);

        let mut t1 = Tape::new();
        let xv = t1.input(x.clone());
        let wv = t1.param(&params, wid);
        let bv = t1.param(&params, bid);
        let fused = t1.linear(xv, wv, bv);

        let mut t2 = Tape::new();
        let xv2 = t2.input(x.clone());
        let wv2 = t2.param(&params, wid);
        let bv2 = t2.param(&params, bid);
        let mm = t2.matmul(xv2, wv2);
        let unfused = t2.add_row(mm, bv2);

        assert!(t1.value(fused).max_abs_diff(t2.value(unfused)) < 1e-5);

        // Gradients must also agree: sum the outputs and compare w/b grads.
        let l1 = t1.sum_all(fused);
        params.zero_grads();
        t1.backward(l1, &mut params);
        let gw1 = params.grad(wid).clone();
        let gb1 = params.grad(bid).clone();
        let l2 = t2.sum_all(unfused);
        params.zero_grads();
        t2.backward(l2, &mut params);
        assert!(gw1.max_abs_diff(params.grad(wid)) < 1e-5);
        assert!(gb1.max_abs_diff(params.grad(bid)) < 1e-5);
    }

    #[test]
    fn clear_resets_the_tape_for_reuse() {
        let mut tape = Tape::new();
        let x = tape.input(Matrix::scalar(1.0));
        let _ = tape.affine(x, 2.0, 0.0);
        assert_eq!(tape.len(), 2);
        tape.clear();
        assert!(tape.is_empty());
        let y = tape.input(Matrix::scalar(4.0));
        assert_eq!(tape.value(y).item(), 4.0);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut tape = Tape::new();
        let x = tape.input(Matrix::from_vec(2, 3, vec![1., 2., 3., -5., 0., 5.]));
        let s = tape.softmax_rows(x);
        for r in 0..2 {
            let total: f32 = tape.value(s).row(r).iter().sum();
            assert!((total - 1.0).abs() < 1e-6);
        }
        // Monotone: larger logit → larger probability.
        let row = tape.value(s).row(0);
        assert!(row[0] < row[1] && row[1] < row[2]);
    }
}
