//! Read-only memory-mapped file regions, hand-rolled over raw `mmap(2)`.
//!
//! The `.uaem` v3 artifact stores its parameter arena as a 16-byte-aligned
//! tail of raw little-endian `f32`s so a serving process can point
//! [`crate::Matrix`] values straight at the page cache instead of copying
//! the weights onto the heap. [`MmapRegion`] is the whole-file mapping that
//! backs those matrices: it is immutable, `Send + Sync`, page-aligned (so
//! any 16-byte-aligned file offset is also 16-byte-aligned in memory), and
//! unmapped when the last [`std::sync::Arc`] handle drops.
//!
//! The workspace is zero-dependency, so the two syscalls are declared as
//! `extern "C"` against the platform libc that every Rust binary on a
//! `*-gnu`/`*-musl`/apple target already links. On non-unix targets (and on
//! a failed `mmap`) the region falls back to an ordinary read into a
//! 16-byte-aligned heap buffer — same API, same alignment guarantee, no
//! page-cache sharing.

use std::fs::File;
use std::io;
use std::path::Path;

#[cfg(unix)]
mod sys {
    use core::ffi::c_void;

    pub const PROT_READ: i32 = 1;
    pub const MAP_PRIVATE: i32 = 2;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> i32;
    }

    pub const MAP_FAILED: *mut c_void = usize::MAX as *mut c_void;
}

enum Backing {
    /// A live `mmap(2)` mapping (unix only); unmapped on drop.
    #[cfg(unix)]
    Mapped { ptr: *const u8, len: usize },
    /// 16-byte-aligned heap copy (non-unix targets or mmap failure). The
    /// `u128` element type is what guarantees the alignment.
    Heap(Vec<u128>, usize),
}

/// An immutable, 16-byte-aligned view of a whole file.
pub struct MmapRegion {
    backing: Backing,
}

// The mapping is PROT_READ and never mutated after construction; sharing
// the raw pointer across threads is as safe as sharing an `Arc<[u8]>`.
unsafe impl Send for MmapRegion {}
unsafe impl Sync for MmapRegion {}

impl MmapRegion {
    /// Maps `path` read-only. Falls back to a heap read when mapping is
    /// unavailable, so callers get the same bytes (without the page-cache
    /// sharing) on every platform.
    pub fn map(path: &Path) -> io::Result<MmapRegion> {
        let file = File::open(path)?;
        let len = file.metadata()?.len() as usize;
        #[cfg(unix)]
        {
            if let Some(region) = Self::map_unix(&file, len) {
                return Ok(region);
            }
        }
        Self::read_fallback(file, len)
    }

    #[cfg(unix)]
    fn map_unix(file: &File, len: usize) -> Option<MmapRegion> {
        use std::os::unix::io::AsRawFd;
        if len == 0 {
            // A zero-length mmap is EINVAL; an empty region needs no map.
            return Some(MmapRegion {
                backing: Backing::Heap(Vec::new(), 0),
            });
        }
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr == sys::MAP_FAILED || ptr.is_null() {
            return None;
        }
        Some(MmapRegion {
            backing: Backing::Mapped {
                ptr: ptr as *const u8,
                len,
            },
        })
    }

    fn read_fallback(mut file: File, len: usize) -> io::Result<MmapRegion> {
        use std::io::Read as _;
        let words = len.div_ceil(16);
        let mut buf = vec![0u128; words];
        let bytes =
            unsafe { std::slice::from_raw_parts_mut(buf.as_mut_ptr() as *mut u8, words * 16) };
        file.read_exact(&mut bytes[..len])?;
        Ok(MmapRegion {
            backing: Backing::Heap(buf, len),
        })
    }

    /// The mapped file contents.
    #[inline]
    pub fn bytes(&self) -> &[u8] {
        match &self.backing {
            #[cfg(unix)]
            Backing::Mapped { ptr, len } => unsafe { std::slice::from_raw_parts(*ptr, *len) },
            Backing::Heap(buf, len) => unsafe {
                std::slice::from_raw_parts(buf.as_ptr() as *const u8, *len)
            },
        }
    }

    /// File length in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        match &self.backing {
            #[cfg(unix)]
            Backing::Mapped { len, .. } => *len,
            Backing::Heap(_, len) => *len,
        }
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the region rides a real `mmap` (vs. the heap fallback) — the
    /// bit the cold-start bench reports so a "zero-copy" claim is checkable.
    pub fn is_mapped(&self) -> bool {
        #[cfg(unix)]
        {
            matches!(self.backing, Backing::Mapped { .. })
        }
        #[cfg(not(unix))]
        {
            false
        }
    }
}

impl Drop for MmapRegion {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let Backing::Mapped { ptr, len } = self.backing {
            unsafe {
                sys::munmap(ptr as *mut core::ffi::c_void, len);
            }
        }
    }
}

impl std::fmt::Debug for MmapRegion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MmapRegion")
            .field("len", &self.len())
            .field("mapped", &self.is_mapped())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str, bytes: &[u8]) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(format!("uae_mmap_{}_{name}", std::process::id()));
        std::fs::write(&path, bytes).unwrap();
        path
    }

    #[test]
    fn maps_exact_file_contents() {
        let data: Vec<u8> = (0..=255u8).cycle().take(5000).collect();
        let path = tmp("contents", &data);
        let region = MmapRegion::map(&path).unwrap();
        assert_eq!(region.len(), 5000);
        assert_eq!(region.bytes(), &data[..]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn base_is_16_byte_aligned() {
        let path = tmp("align", &[7u8; 64]);
        let region = MmapRegion::map(&path).unwrap();
        assert_eq!(region.bytes().as_ptr() as usize % 16, 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_file_maps_to_empty_region() {
        let path = tmp("empty", &[]);
        let region = MmapRegion::map(&path).unwrap();
        assert!(region.is_empty());
        assert_eq!(region.bytes(), &[] as &[u8]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_is_io_error() {
        assert!(MmapRegion::map(Path::new("/nonexistent/uae.bin")).is_err());
    }

    #[test]
    fn heap_fallback_matches_mapping() {
        let data = vec![42u8; 100];
        let path = tmp("fallback", &data);
        let file = File::open(&path).unwrap();
        let region = MmapRegion::read_fallback(file, 100).unwrap();
        assert!(!region.is_mapped());
        assert_eq!(region.bytes(), &data[..]);
        assert_eq!(region.bytes().as_ptr() as usize % 16, 0);
        std::fs::remove_file(&path).unwrap();
    }
}
