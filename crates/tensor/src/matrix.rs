//! Dense row-major `f32` matrices.
//!
//! [`Matrix`] is the single value type flowing through the autodiff tape.
//! Vectors are 1×n or n×1 matrices; scalars are 1×1. A "batched 3-D" tensor
//! of shape `(batch, m, n)` is stored as a `(batch·m) × n` matrix and
//! interpreted by the batched ops in [`crate::tape`].

use std::sync::Arc;

use crate::arena;
use crate::backend;
use crate::mmap::MmapRegion;
use crate::rng::Rng;

/// Backing storage for a [`Matrix`]: a pooled heap buffer, a bump-allocated
/// lease from the per-batch inference arena (see [`crate::arena`]), a
/// shared reference-counted buffer for frozen serving weights (see
/// [`Matrix::freeze`]), or a window into a memory-mapped artifact file (see
/// [`Matrix::from_mmap`]). Which one a matrix gets is decided once, in
/// [`Matrix::uninit`], [`Matrix::freeze`] or [`Matrix::from_mmap`];
/// everything else sees a plain `[f32]` through `Deref`.
pub(crate) enum Store {
    Heap(Vec<f32>),
    Arena(arena::Lease),
    Shared(Arc<Vec<f32>>),
    /// `len` f32s starting `offset` bytes into a mapped file. The offset is
    /// 16-byte-aligned against a page-aligned base, so the pointer cast in
    /// `deref` is always in-bounds and aligned.
    Mapped {
        region: Arc<MmapRegion>,
        offset: usize,
        len: usize,
    },
}

impl Default for Store {
    fn default() -> Self {
        Store::Heap(Vec::new())
    }
}

impl std::ops::Deref for Store {
    type Target = [f32];
    #[inline]
    fn deref(&self) -> &[f32] {
        match self {
            Store::Heap(v) => v,
            Store::Arena(l) => l.slice(),
            Store::Shared(a) => a,
            Store::Mapped {
                region,
                offset,
                len,
            } => unsafe {
                // Bounds and 16-byte alignment were validated in
                // `Matrix::from_mmap`; the region is immutable and outlives
                // this store via the Arc.
                std::slice::from_raw_parts(region.bytes().as_ptr().add(*offset) as *const f32, *len)
            },
        }
    }
}

impl std::ops::DerefMut for Store {
    #[inline]
    fn deref_mut(&mut self) -> &mut [f32] {
        if matches!(self, Store::Shared(_) | Store::Mapped { .. }) {
            // Copy-on-write: the first mutable access to a frozen or mapped
            // buffer materializes a private heap copy, so mutation can never
            // be observed through the other handles (or write to the map).
            let v = {
                let src: &[f32] = self;
                let mut v = backend::take_uninit(src.len());
                v.copy_from_slice(src);
                v
            };
            *self = Store::Heap(v);
        }
        match self {
            Store::Heap(v) => v,
            Store::Arena(l) => l.slice_mut(),
            Store::Shared(_) | Store::Mapped { .. } => {
                unreachable!("shared store survived copy-on-write")
            }
        }
    }
}

impl std::fmt::Debug for Store {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Debug::fmt(&**self, f)
    }
}

/// A dense row-major matrix of `f32`.
///
/// Allocations come from (and return to, on drop) the thread-local scratch
/// pool in [`crate::backend`] — or, inside an [`crate::arena::scoped`]
/// inference region, from the per-batch bump arena — so tape-heavy loops and
/// serve scoring reuse buffers instead of hitting the allocator for every op.
///
/// ```
/// use uae_tensor::Matrix;
///
/// let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
/// let b = Matrix::col_vector(&[5.0, 6.0]);
/// let c = a.matmul(&b); // rides the blocked kernels + worker pool
/// assert_eq!(c.shape(), (2, 1));
/// assert_eq!(c.data(), &[17.0, 39.0]);
/// let d = c.map(|v| v * 0.5);
/// assert_eq!(d.get(1, 0), 19.5);
/// ```
#[derive(Debug)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Store,
}

impl PartialEq for Matrix {
    fn eq(&self, other: &Self) -> bool {
        self.rows == other.rows && self.cols == other.cols && *self.data == *other.data
    }
}

impl Clone for Matrix {
    fn clone(&self) -> Self {
        match &self.data {
            // Frozen weights clone as O(1) handle copies (no data movement).
            Store::Shared(a) => {
                return Matrix {
                    rows: self.rows,
                    cols: self.cols,
                    data: Store::Shared(Arc::clone(a)),
                }
            }
            // Mapped weights likewise: cloning bumps the region refcount.
            Store::Mapped {
                region,
                offset,
                len,
            } => {
                return Matrix {
                    rows: self.rows,
                    cols: self.cols,
                    data: Store::Mapped {
                        region: Arc::clone(region),
                        offset: *offset,
                        len: *len,
                    },
                }
            }
            _ => {}
        }
        let mut out = Matrix::uninit(self.rows, self.cols);
        out.data.copy_from_slice(&self.data);
        out
    }

    fn clone_from(&mut self, source: &Self) {
        if matches!(source.data, Store::Shared(_) | Store::Mapped { .. })
            || self.data.len() != source.data.len()
        {
            *self = source.clone();
        } else {
            self.rows = source.rows;
            self.cols = source.cols;
            self.data.copy_from_slice(&source.data);
        }
    }
}

impl Drop for Matrix {
    fn drop(&mut self) {
        match std::mem::take(&mut self.data) {
            Store::Heap(v) => backend::recycle(v),
            Store::Arena(lease) => drop(lease),
            Store::Shared(handle) => drop(handle),
            Store::Mapped { region, .. } => drop(region),
        }
    }
}

impl Matrix {
    /// A matrix whose contents are unspecified (stale but initialized
    /// floats). Callers must overwrite every element. This is the single
    /// allocation chokepoint: inside an [`crate::arena::scoped`] region the
    /// buffer is bump-allocated; otherwise it comes from the scratch pool.
    pub(crate) fn uninit(rows: usize, cols: usize) -> Self {
        let data = match arena::alloc(rows * cols) {
            Some(lease) => Store::Arena(lease),
            None => Store::Heap(backend::take_uninit(rows * cols)),
        };
        Matrix { rows, cols, data }
    }

    /// An all-zeros matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        let mut out = Matrix::uninit(rows, cols);
        out.data.fill(0.0);
        out
    }

    /// A matrix filled with a constant.
    pub fn filled(rows: usize, cols: usize, value: f32) -> Self {
        let mut out = Matrix::uninit(rows, cols);
        out.data.fill(value);
        out
    }

    /// Builds a matrix from row-major data. Panics if the length mismatches.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "Matrix::from_vec: {} values for a {rows}x{cols} matrix",
            data.len()
        );
        Matrix {
            rows,
            cols,
            data: Store::Heap(data),
        }
    }

    /// Builds a matrix by evaluating `f(row, col)` in row-major order.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut out = Matrix::uninit(rows, cols);
        for r in 0..rows {
            for (c, o) in out.data[r * cols..(r + 1) * cols].iter_mut().enumerate() {
                *o = f(r, c);
            }
        }
        out
    }

    /// A single-row matrix from a slice.
    pub fn row_vector(values: &[f32]) -> Self {
        let mut out = Matrix::uninit(1, values.len());
        out.data.copy_from_slice(values);
        out
    }

    /// A single-column matrix from a slice.
    pub fn col_vector(values: &[f32]) -> Self {
        let mut out = Matrix::uninit(values.len(), 1);
        out.data.copy_from_slice(values);
        out
    }

    /// A 1×1 matrix.
    pub fn scalar(value: f32) -> Self {
        Matrix::from_vec(1, 1, vec![value])
    }

    /// Gaussian-initialised matrix with the given standard deviation.
    /// Draws are sequential in row-major order, so results are independent
    /// of pooling and thread configuration.
    pub fn randn(rows: usize, cols: usize, std: f32, rng: &mut Rng) -> Self {
        let mut out = Matrix::uninit(rows, cols);
        for o in out.data.iter_mut() {
            *o = rng.normal_with(0.0, std as f64) as f32;
        }
        out
    }

    /// Uniform-initialised matrix on `[-limit, limit]` (sequential draws).
    pub fn rand_uniform(rows: usize, cols: usize, limit: f32, rng: &mut Rng) -> Self {
        let mut out = Matrix::uninit(rows, cols);
        for o in out.data.iter_mut() {
            *o = rng.range_f64(-limit as f64, limit as f64) as f32;
        }
        out
    }

    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts the backing store to a shared, reference-counted buffer so
    /// later `clone()`s are O(1) handle copies instead of deep copies. A
    /// frozen matrix is still mutable: the first mutable access quietly
    /// copies-on-write back to a private heap buffer. The serving scorers
    /// freeze their parameters once at construction so `ValueExec::param`
    /// stops memcpy-ing every weight matrix on every batch.
    pub fn freeze(&mut self) {
        // Mapped matrices are already zero-copy-cloneable; freezing them
        // onto the heap would defeat the mmap.
        if matches!(self.data, Store::Shared(_) | Store::Mapped { .. }) {
            return;
        }
        let shared = Arc::new(self.data.to_vec());
        match std::mem::replace(&mut self.data, Store::Shared(shared)) {
            Store::Heap(v) => backend::recycle(v),
            other => drop(other),
        }
    }

    /// Whether the backing store is a shared (frozen) or memory-mapped
    /// buffer, i.e. `clone()` is an O(1) handle copy.
    #[inline]
    pub fn is_shared(&self) -> bool {
        matches!(self.data, Store::Shared(_) | Store::Mapped { .. })
    }

    /// Builds a matrix whose data is a pointer-cast view into `region` at
    /// byte `offset` — the `.uaem` v3 zero-copy load path. The offset must
    /// be 16-byte-aligned (so SIMD loads on the mapped weights are legal)
    /// and `rows * cols` `f32`s must fit inside the region.
    pub fn from_mmap(
        region: Arc<MmapRegion>,
        offset: usize,
        rows: usize,
        cols: usize,
    ) -> Result<Matrix, &'static str> {
        let len = rows
            .checked_mul(cols)
            .ok_or("mapped matrix shape overflows")?;
        let bytes = len.checked_mul(4).ok_or("mapped matrix size overflows")?;
        if !offset.is_multiple_of(16) {
            return Err("mapped matrix offset not 16-byte aligned");
        }
        let end = offset
            .checked_add(bytes)
            .ok_or("mapped matrix extent overflows")?;
        if end > region.len() {
            return Err("mapped matrix extends past end of region");
        }
        Ok(Matrix {
            rows,
            cols,
            data: Store::Mapped {
                region,
                offset,
                len,
            },
        })
    }

    /// Raw row-major data.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable raw row-major data.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// The value of a 1×1 matrix.
    pub fn item(&self) -> f32 {
        assert_eq!(self.shape(), (1, 1), "item() on a non-scalar matrix");
        self.data[0]
    }

    /// A view of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// A mutable view of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix product `self · rhs` (blocked, parallel backend kernels).
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul: {}x{} · {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::uninit(self.rows, rhs.cols);
        backend::matmul(
            self.rows,
            self.cols,
            rhs.cols,
            &self.data,
            &rhs.data,
            &mut out.data,
        );
        out
    }

    /// `self · rhs + bias` with `bias` a `1 × rhs.cols` row broadcast over
    /// output rows — the fused dense-layer forward.
    pub fn matmul_bias(&self, rhs: &Matrix, bias: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul_bias: {}x{} · {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        assert_eq!(
            bias.shape(),
            (1, rhs.cols),
            "matmul_bias: bias must be 1x{}",
            rhs.cols
        );
        let mut out = Matrix::uninit(self.rows, rhs.cols);
        backend::matmul_bias(
            self.rows,
            self.cols,
            rhs.cols,
            &self.data,
            &rhs.data,
            &bias.data,
            &mut out.data,
        );
        out
    }

    /// `selfᵀ · rhs` without materialising the transpose.
    pub fn matmul_tn(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.rows, rhs.rows,
            "matmul_tn: ({}x{})ᵀ · {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::uninit(self.cols, rhs.cols);
        backend::matmul_tn(
            self.rows,
            self.cols,
            rhs.cols,
            &self.data,
            &rhs.data,
            &mut out.data,
        );
        out
    }

    /// `self · rhsᵀ` without materialising the transpose.
    pub fn matmul_nt(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.cols,
            "matmul_nt: {}x{} · ({}x{})ᵀ",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::uninit(self.rows, rhs.rows);
        backend::matmul_nt(
            self.rows,
            self.cols,
            rhs.rows,
            &self.data,
            &rhs.data,
            &mut out.data,
        );
        out
    }

    /// The explicit transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::uninit(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Element-wise map into a new (pooled or arena-backed) matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32 + Sync) -> Matrix {
        let mut out = Matrix::uninit(self.rows, self.cols);
        backend::map_elems(&self.data, &mut out.data, &f);
        out
    }

    /// Element-wise combination of two same-shape matrices.
    pub fn zip_map(&self, rhs: &Matrix, f: impl Fn(f32, f32) -> f32 + Sync) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "zip_map shape mismatch");
        let mut out = Matrix::uninit(self.rows, self.cols);
        backend::zip_map_elems(&self.data, &rhs.data, &mut out.data, &f);
        out
    }

    /// Applies `f` to every element in place (no allocation).
    pub fn apply(&mut self, f: impl Fn(f32) -> f32) {
        for a in self.data.iter_mut() {
            *a = f(*a);
        }
    }

    /// `self[i] = f(self[i], rhs[i])` element-wise in place (no allocation).
    pub fn zip_apply(&mut self, rhs: &Matrix, f: impl Fn(f32, f32) -> f32) {
        assert_eq!(self.shape(), rhs.shape(), "zip_apply shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(rhs.data.iter()) {
            *a = f(*a, b);
        }
    }

    /// `self += rhs` element-wise.
    pub fn add_assign(&mut self, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "add_assign shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(rhs.data.iter()) {
            *a += b;
        }
    }

    /// `self += scale · rhs` element-wise (AXPY).
    pub fn add_scaled(&mut self, rhs: &Matrix, scale: f32) {
        assert_eq!(self.shape(), rhs.shape(), "add_scaled shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(rhs.data.iter()) {
            *a += scale * b;
        }
    }

    /// Multiplies every element by `s` in place.
    pub fn scale_in_place(&mut self, s: f32) {
        for a in self.data.iter_mut() {
            *a *= s;
        }
    }

    /// Sets every element to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.fill(0.0);
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0.0 for an empty matrix).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Squared Frobenius norm.
    pub fn squared_norm(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum()
    }

    /// Horizontal concatenation of matrices with equal row counts.
    pub fn concat_cols(parts: &[&Matrix]) -> Matrix {
        assert!(!parts.is_empty(), "concat_cols of nothing");
        let rows = parts[0].rows;
        for p in parts {
            assert_eq!(p.rows, rows, "concat_cols row mismatch");
        }
        let cols: usize = parts.iter().map(|p| p.cols).sum();
        let mut out = Matrix::uninit(rows, cols);
        for r in 0..rows {
            let dst = &mut out.data[r * cols..(r + 1) * cols];
            let mut offset = 0;
            for p in parts {
                dst[offset..offset + p.cols].copy_from_slice(p.row(r));
                offset += p.cols;
            }
        }
        out
    }

    /// Vertical concatenation of matrices with equal column counts.
    pub fn concat_rows(parts: &[&Matrix]) -> Matrix {
        assert!(!parts.is_empty(), "concat_rows of nothing");
        let cols = parts[0].cols;
        let rows: usize = parts.iter().map(|p| p.rows).sum();
        let mut out = Matrix::uninit(rows, cols);
        let mut offset = 0;
        for p in parts {
            assert_eq!(p.cols, cols, "concat_rows col mismatch");
            out.data[offset..offset + p.data.len()].copy_from_slice(&p.data);
            offset += p.data.len();
        }
        out
    }

    /// Copies columns `[start, end)` into a new matrix.
    pub fn slice_cols(&self, start: usize, end: usize) -> Matrix {
        assert!(start <= end && end <= self.cols, "slice_cols out of range");
        let width = end - start;
        let mut out = Matrix::uninit(self.rows, width);
        for r in 0..self.rows {
            out.row_mut(r).copy_from_slice(&self.row(r)[start..end]);
        }
        out
    }

    /// Gathers the listed rows into a new matrix.
    pub fn gather_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::uninit(indices.len(), self.cols);
        for (i, &idx) in indices.iter().enumerate() {
            assert!(idx < self.rows, "gather_rows index {idx} >= {}", self.rows);
            out.row_mut(i).copy_from_slice(self.row(idx));
        }
        out
    }

    /// Maximum absolute element-wise difference to another matrix.
    pub fn max_abs_diff(&self, rhs: &Matrix) -> f32 {
        assert_eq!(self.shape(), rhs.shape());
        self.data
            .iter()
            .zip(rhs.data.iter())
            .map(|(&a, &b)| (a - b).abs())
            .fold(0.0, f32::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: usize, cols: usize, vals: &[f32]) -> Matrix {
        Matrix::from_vec(rows, cols, vals.to_vec())
    }

    #[test]
    fn matmul_small_known_result() {
        let a = m(2, 3, &[1., 2., 3., 4., 5., 6.]);
        let b = m(3, 2, &[7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c, m(2, 2, &[58., 64., 139., 154.]));
    }

    #[test]
    fn matmul_bias_matches_matmul_plus_broadcast() {
        let mut rng = Rng::seed_from_u64(9);
        let a = Matrix::randn(5, 3, 1.0, &mut rng);
        let b = Matrix::randn(3, 4, 1.0, &mut rng);
        let bias = Matrix::randn(1, 4, 1.0, &mut rng);
        let fused = a.matmul_bias(&b, &bias);
        let mut reference = a.matmul(&b);
        for r in 0..5 {
            for (o, &bv) in reference.row_mut(r).iter_mut().zip(bias.row(0)) {
                *o += bv;
            }
        }
        assert!(fused.max_abs_diff(&reference) < 1e-5);
    }

    #[test]
    fn clone_after_pool_recycling_is_exact() {
        // Churn the pool so clones draw recycled (stale) buffers, then check
        // the copy is still exact.
        for i in 0..10 {
            let m = Matrix::filled(7, 11, i as f32);
            let c = m.clone();
            assert_eq!(m, c);
        }
    }

    #[test]
    fn frozen_clone_shares_then_copies_on_write() {
        let mut a = m(2, 3, &[1., 2., 3., 4., 5., 6.]);
        a.freeze();
        assert!(a.is_shared());
        let mut b = a.clone();
        assert!(b.is_shared(), "clone of a frozen matrix must share");
        assert_eq!(a, b);
        // Mutating the clone must detach it without touching the original.
        b.set(0, 0, 99.0);
        assert!(!b.is_shared(), "mutable access must copy-on-write");
        assert!(a.is_shared());
        assert_eq!(a.get(0, 0), 1.0);
        assert_eq!(b.get(0, 0), 99.0);
        // Freezing twice is a no-op; reads never detach.
        a.freeze();
        assert_eq!(a.row(1), &[4., 5., 6.]);
        assert!(a.is_shared());
    }

    #[test]
    fn frozen_matrix_computes_identically() {
        let mut rng = Rng::seed_from_u64(11);
        let a = Matrix::randn(4, 6, 1.0, &mut rng);
        let b = Matrix::randn(6, 3, 1.0, &mut rng);
        let plain = a.matmul(&b);
        let mut fa = a.clone();
        let mut fb = b.clone();
        fa.freeze();
        fb.freeze();
        assert_eq!(
            fa.matmul(&fb),
            plain,
            "frozen operands must be bitwise identical"
        );
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let mut rng = Rng::seed_from_u64(1);
        let a = Matrix::randn(4, 3, 1.0, &mut rng);
        let b = Matrix::randn(4, 5, 1.0, &mut rng);
        let fast = a.matmul_tn(&b);
        let slow = a.transpose().matmul(&b);
        assert!(fast.max_abs_diff(&slow) < 1e-6);
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let mut rng = Rng::seed_from_u64(2);
        let a = Matrix::randn(4, 3, 1.0, &mut rng);
        let b = Matrix::randn(5, 3, 1.0, &mut rng);
        let fast = a.matmul_nt(&b);
        let slow = a.matmul(&b.transpose());
        assert!(fast.max_abs_diff(&slow) < 1e-6);
    }

    #[test]
    #[should_panic(expected = "matmul")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn transpose_round_trip() {
        let a = m(2, 3, &[1., 2., 3., 4., 5., 6.]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose(), m(3, 2, &[1., 4., 2., 5., 3., 6.]));
    }

    #[test]
    fn concat_and_slice_cols_round_trip() {
        let a = m(2, 2, &[1., 2., 5., 6.]);
        let b = m(2, 1, &[3., 7.]);
        let c = Matrix::concat_cols(&[&a, &b]);
        assert_eq!(c, m(2, 3, &[1., 2., 3., 5., 6., 7.]));
        assert_eq!(c.slice_cols(0, 2), a);
        assert_eq!(c.slice_cols(2, 3), b);
    }

    #[test]
    fn concat_rows_stacks() {
        let a = m(1, 2, &[1., 2.]);
        let b = m(2, 2, &[3., 4., 5., 6.]);
        assert_eq!(
            Matrix::concat_rows(&[&a, &b]),
            m(3, 2, &[1., 2., 3., 4., 5., 6.])
        );
    }

    #[test]
    fn gather_rows_picks_and_repeats() {
        let a = m(3, 2, &[1., 2., 3., 4., 5., 6.]);
        let g = a.gather_rows(&[2, 0, 2]);
        assert_eq!(g, m(3, 2, &[5., 6., 1., 2., 5., 6.]));
    }

    #[test]
    fn sum_mean_norm() {
        let a = m(2, 2, &[1., 2., 3., 4.]);
        assert_eq!(a.sum(), 10.0);
        assert_eq!(a.mean(), 2.5);
        assert_eq!(a.squared_norm(), 30.0);
    }

    #[test]
    fn add_scaled_is_axpy() {
        let mut a = m(1, 3, &[1., 2., 3.]);
        let b = m(1, 3, &[10., 20., 30.]);
        a.add_scaled(&b, 0.5);
        assert_eq!(a, m(1, 3, &[6., 12., 18.]));
    }

    #[test]
    fn zip_map_applies_pairwise() {
        let a = m(1, 3, &[1., 2., 3.]);
        let b = m(1, 3, &[4., 5., 6.]);
        assert_eq!(a.zip_map(&b, |x, y| x * y), m(1, 3, &[4., 10., 18.]));
    }

    #[test]
    fn item_requires_scalar() {
        assert_eq!(Matrix::scalar(3.5).item(), 3.5);
    }

    #[test]
    #[should_panic(expected = "non-scalar")]
    fn item_panics_on_matrix() {
        let _ = Matrix::zeros(2, 1).item();
    }

    #[test]
    fn randn_respects_std() {
        let mut rng = Rng::seed_from_u64(3);
        let a = Matrix::randn(100, 100, 0.1, &mut rng);
        let mean = a.mean();
        let var = a.squared_norm() / a.len() as f32 - mean * mean;
        assert!(mean.abs() < 0.01);
        assert!((var.sqrt() - 0.1).abs() < 0.01);
    }

    fn mapped_fixture(floats: &[f32]) -> (std::path::PathBuf, Arc<MmapRegion>) {
        let path = std::env::temp_dir().join(format!(
            "uae_matrix_mmap_{}_{}",
            std::process::id(),
            floats.len()
        ));
        let mut bytes = Vec::with_capacity(floats.len() * 4);
        for v in floats {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        std::fs::write(&path, &bytes).unwrap();
        let region = Arc::new(MmapRegion::map(&path).unwrap());
        (path, region)
    }

    #[test]
    fn mapped_matrix_reads_and_computes_like_heap() {
        let data = [1.0f32, 2.0, 3.0, 4.0, 5.0, 6.0];
        let (path, region) = mapped_fixture(&data);
        let mapped = Matrix::from_mmap(region, 0, 2, 3).unwrap();
        let heap = Matrix::from_vec(2, 3, data.to_vec());
        assert_eq!(mapped, heap);
        let v = Matrix::col_vector(&[1.0, 1.0, 1.0]);
        assert_eq!(mapped.matmul(&v), heap.matmul(&v));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn mapped_matrix_clone_is_handle_copy_and_mutation_copies_on_write() {
        let data = [9.0f32, 8.0, 7.0, 6.0];
        let (path, region) = mapped_fixture(&data);
        let a = Matrix::from_mmap(region, 0, 2, 2).unwrap();
        assert!(a.is_shared());
        let mut b = a.clone();
        assert!(b.is_shared());
        b.data_mut()[0] = 100.0;
        // Mutating the clone detached it; the original still sees the file.
        assert_eq!(a.data()[0], 9.0);
        assert_eq!(b.data()[0], 100.0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn mapped_matrix_freeze_is_noop() {
        let (path, region) = mapped_fixture(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        let mut a = Matrix::from_mmap(region, 0, 5, 1).unwrap();
        a.freeze();
        assert!(a.is_shared());
        assert_eq!(a.data(), &[1.0, 2.0, 3.0, 4.0, 5.0]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn from_mmap_validates_alignment_and_bounds() {
        let (path, region) = mapped_fixture(&[0.0; 8]);
        assert!(Matrix::from_mmap(Arc::clone(&region), 4, 2, 2).is_err());
        assert!(Matrix::from_mmap(Arc::clone(&region), 16, 2, 3).is_err());
        assert!(Matrix::from_mmap(Arc::clone(&region), 0, usize::MAX, 2).is_err());
        assert!(Matrix::from_mmap(region, 16, 2, 2).is_ok());
        std::fs::remove_file(&path).unwrap();
    }
}
