//! Execution contexts: one forward implementation, two engines.
//!
//! Every layer in the workspace writes its forward math exactly once, generic
//! over [`Exec`]. Two execution contexts implement the trait:
//!
//! * [`Tape`] — the training engine. Each op records an autodiff node whose
//!   value is computed eagerly; [`Tape::backward`] later walks the nodes.
//! * [`ValueExec`] — the serving engine. The same ops run directly on
//!   [`Matrix`] values with no node bookkeeping and no gradient state.
//!
//! Both contexts dispatch every op through the same value kernels (the
//! private `kernels` module below, which the tape's own op constructors also
//! call), so the two engines are **bit-identical by construction**: there is
//! no second forward implementation that could drift, only a second way of
//! wrapping the first one. End-to-end equivalence suites
//! (`tests/exec_equivalence.rs`) pin the contract at 1 and 4 worker threads.
//!
//! The op vocabulary is exactly what the paper's models need: matmul and the
//! fused `x·W + b`, batched matmul for field self-attention, element-wise
//! arithmetic and activations, row/column broadcasts, concat/slice/reshape,
//! row-sum and row-softmax. Loss ops (`weighted_bce`, `mean_all`, …) stay
//! tape-only — serving never builds a loss.

use crate::matrix::Matrix;
use crate::params::{ParamId, Params};
use crate::tape::{Tape, Var};

/// Shared forward kernels. Every function here is the *single* definition of
/// its op's arithmetic: [`Tape`]'s op constructors call these to compute node
/// values, and [`ValueExec`] calls them directly. Keeping one body per op is
/// what makes the tape and value engines bit-identical by construction.
pub(crate) mod kernels {
    use crate::backend;
    use crate::matrix::Matrix;
    use crate::tape::sigmoid;

    pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
        a.matmul(b)
    }

    /// Fused `x·W + b` (bias seeds the matmul accumulators).
    pub fn linear(x: &Matrix, w: &Matrix, b: &Matrix) -> Matrix {
        x.matmul_bias(w, b)
    }

    pub fn add(a: &Matrix, b: &Matrix) -> Matrix {
        let mut v = a.clone();
        v.add_assign(b);
        v
    }

    pub fn sub(a: &Matrix, b: &Matrix) -> Matrix {
        a.zip_map(b, |x, y| x - y)
    }

    pub fn mul(a: &Matrix, b: &Matrix) -> Matrix {
        a.zip_map(b, |x, y| x * y)
    }

    /// `(m×n) + (1×n)` broadcast over rows.
    pub fn add_row(a: &Matrix, bias: &Matrix) -> Matrix {
        let (m, n) = a.shape();
        assert_eq!(bias.shape(), (1, n), "add_row shape mismatch");
        let mut out = Matrix::uninit(m, n);
        for r in 0..m {
            for ((o, &x), &b) in out.row_mut(r).iter_mut().zip(a.row(r)).zip(bias.row(0)) {
                *o = x + b;
            }
        }
        out
    }

    /// `(m×n) ∘ (m×1)` broadcast over columns.
    pub fn mul_col(a: &Matrix, col: &Matrix) -> Matrix {
        let (m, n) = a.shape();
        assert_eq!(col.shape(), (m, 1), "mul_col shape mismatch");
        let mut out = Matrix::uninit(m, n);
        for r in 0..m {
            let s = col.get(r, 0);
            for (o, &x) in out.row_mut(r).iter_mut().zip(a.row(r)) {
                *o = x * s;
            }
        }
        out
    }

    /// `y = mul·x + add` element-wise.
    pub fn affine(x: &Matrix, mul: f32, add: f32) -> Matrix {
        x.map(|v| mul * v + add)
    }

    pub fn sigmoid_map(x: &Matrix) -> Matrix {
        x.map(sigmoid)
    }

    pub fn tanh_map(x: &Matrix) -> Matrix {
        x.map(f32::tanh)
    }

    pub fn relu_map(x: &Matrix) -> Matrix {
        x.map(|v| v.max(0.0))
    }

    pub fn concat_cols(parts: &[&Matrix]) -> Matrix {
        Matrix::concat_cols(parts)
    }

    pub fn slice_cols(x: &Matrix, start: usize, end: usize) -> Matrix {
        x.slice_cols(start, end)
    }

    /// Row-major reinterpretation (a pooled copy; data order unchanged).
    pub fn reshape(x: &Matrix, rows: usize, cols: usize) -> Matrix {
        assert_eq!(x.len(), rows * cols, "reshape element-count mismatch");
        let mut value = Matrix::uninit(rows, cols);
        value.data_mut().copy_from_slice(x.data());
        value
    }

    /// `(m×n) → (m×1)` summing each row.
    pub fn row_sum(x: &Matrix) -> Matrix {
        Matrix::from_fn(x.rows(), 1, |r, _| x.row(r).iter().sum())
    }

    /// Row-wise softmax (max-subtracted for stability).
    pub fn softmax_rows(v: &Matrix) -> Matrix {
        let mut value = Matrix::uninit(v.rows(), v.cols());
        for r in 0..v.rows() {
            let row = v.row(r);
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut denom = 0.0;
            for (o, &x) in value.row_mut(r).iter_mut().zip(row) {
                *o = (x - max).exp();
                denom += *o;
            }
            for o in value.row_mut(r) {
                *o /= denom;
            }
        }
        value
    }

    /// Batched matrix product over 3-D tensors packed as 2-D matrices; see
    /// [`crate::tape::Tape::batched_matmul`] for the packing convention.
    pub fn batched_matmul(a: &Matrix, b: &Matrix, batch: usize, trans_b: bool) -> Matrix {
        assert!(batch > 0 && a.rows().is_multiple_of(batch) && b.rows().is_multiple_of(batch));
        let m = a.rows() / batch;
        let p = a.cols();
        let (n, out_cols);
        if trans_b {
            assert_eq!(b.cols(), p, "batched_matmul(trans_b) inner dim");
            n = b.rows() / batch;
            out_cols = n;
        } else {
            assert_eq!(b.rows() / batch, p, "batched_matmul inner dim");
            n = b.cols();
            out_cols = n;
        }
        let data = backend::batched_matmul(batch, m, p, n, trans_b, a.data(), b.data());
        Matrix::from_vec(batch * m, out_cols, data)
    }
}

/// An execution context for forward passes.
///
/// `V` is the context's value handle: [`Var`] on a [`Tape`] (a node index
/// whose value lives on the tape), a plain [`Matrix`] under [`ValueExec`].
/// Layers take handles by reference and return fresh handles, so one generic
/// forward body serves both training and tape-free inference.
pub trait Exec {
    /// Value handle (`Var` on the tape, `Matrix` tape-free).
    type V: Clone;

    /// A constant leaf (inputs, masks, …). Never receives gradient.
    fn input(&mut self, value: Matrix) -> Self::V;

    /// A trainable-parameter leaf snapshotted from `params`.
    fn param(&mut self, params: &Params, id: ParamId) -> Self::V;

    /// Gathers `rows` of parameter table `id` (embedding lookup).
    fn gather(&mut self, params: &Params, id: ParamId, rows: &[usize]) -> Self::V;

    /// Blocks gradient flow: on the tape the value re-enters as a constant
    /// leaf; tape-free it is a plain copy (detaching values is a no-op).
    fn detach(&mut self, x: &Self::V) -> Self::V;

    /// The forward value behind a handle.
    fn value<'a>(&'a self, x: &'a Self::V) -> &'a Matrix;

    /// Matrix product.
    fn matmul(&mut self, a: &Self::V, b: &Self::V) -> Self::V;

    /// Fused dense layer `x·W + b`.
    fn linear(&mut self, x: &Self::V, w: &Self::V, b: &Self::V) -> Self::V;

    /// Batched matrix product over packed 3-D tensors
    /// (see [`Tape::batched_matmul`] for the packing convention).
    fn batched_matmul(&mut self, a: &Self::V, b: &Self::V, batch: usize, trans_b: bool) -> Self::V;

    /// Element-wise sum.
    fn add(&mut self, a: &Self::V, b: &Self::V) -> Self::V;

    /// Element-wise difference.
    fn sub(&mut self, a: &Self::V, b: &Self::V) -> Self::V;

    /// Element-wise (Hadamard) product.
    fn mul(&mut self, a: &Self::V, b: &Self::V) -> Self::V;

    /// Element-wise square.
    fn square(&mut self, x: &Self::V) -> Self::V {
        self.mul(&x.clone(), x)
    }

    /// Adds a `1×n` row vector to every row of an `m×n` matrix (bias add).
    fn add_row(&mut self, a: &Self::V, row: &Self::V) -> Self::V;

    /// Multiplies every row of an `m×n` matrix by the matching entry of an
    /// `m×1` column (per-sample mask/weight).
    fn mul_col(&mut self, a: &Self::V, col: &Self::V) -> Self::V;

    /// `y = mul·x + add` element-wise.
    fn affine(&mut self, x: &Self::V, mul: f32, add: f32) -> Self::V;

    /// `1 − x` element-wise.
    fn one_minus(&mut self, x: &Self::V) -> Self::V {
        self.affine(x, -1.0, 1.0)
    }

    /// `s · x`.
    fn scale(&mut self, x: &Self::V, s: f32) -> Self::V {
        self.affine(x, s, 0.0)
    }

    fn sigmoid(&mut self, x: &Self::V) -> Self::V;

    fn tanh(&mut self, x: &Self::V) -> Self::V;

    fn relu(&mut self, x: &Self::V) -> Self::V;

    /// Horizontal concatenation.
    fn concat_cols(&mut self, parts: &[Self::V]) -> Self::V;

    /// Copies out columns `[start, end)`.
    fn slice_cols(&mut self, x: &Self::V, start: usize, end: usize) -> Self::V;

    /// Row-major reshape.
    fn reshape(&mut self, x: &Self::V, rows: usize, cols: usize) -> Self::V;

    /// Per-row sum: `(m×n) → (m×1)`.
    fn row_sum(&mut self, x: &Self::V) -> Self::V;

    /// Row-wise softmax.
    fn softmax_rows(&mut self, x: &Self::V) -> Self::V;
}

/// The training engine: every op records an autodiff node (see [`Tape`]'s
/// inherent methods, which this impl delegates to one-for-one).
impl Exec for Tape {
    type V = Var;

    fn input(&mut self, value: Matrix) -> Var {
        Tape::input(self, value)
    }

    fn param(&mut self, params: &Params, id: ParamId) -> Var {
        Tape::param(self, params, id)
    }

    fn gather(&mut self, params: &Params, id: ParamId, rows: &[usize]) -> Var {
        Tape::gather(self, params, id, rows)
    }

    fn detach(&mut self, x: &Var) -> Var {
        let v = Tape::value(self, *x).clone();
        Tape::input(self, v)
    }

    fn value<'a>(&'a self, x: &'a Var) -> &'a Matrix {
        Tape::value(self, *x)
    }

    fn matmul(&mut self, a: &Var, b: &Var) -> Var {
        Tape::matmul(self, *a, *b)
    }

    fn linear(&mut self, x: &Var, w: &Var, b: &Var) -> Var {
        Tape::linear(self, *x, *w, *b)
    }

    fn batched_matmul(&mut self, a: &Var, b: &Var, batch: usize, trans_b: bool) -> Var {
        Tape::batched_matmul(self, *a, *b, batch, trans_b)
    }

    fn add(&mut self, a: &Var, b: &Var) -> Var {
        Tape::add(self, *a, *b)
    }

    fn sub(&mut self, a: &Var, b: &Var) -> Var {
        Tape::sub(self, *a, *b)
    }

    fn mul(&mut self, a: &Var, b: &Var) -> Var {
        Tape::mul(self, *a, *b)
    }

    fn square(&mut self, x: &Var) -> Var {
        Tape::square(self, *x)
    }

    fn add_row(&mut self, a: &Var, row: &Var) -> Var {
        Tape::add_row(self, *a, *row)
    }

    fn mul_col(&mut self, a: &Var, col: &Var) -> Var {
        Tape::mul_col(self, *a, *col)
    }

    fn affine(&mut self, x: &Var, mul: f32, add: f32) -> Var {
        Tape::affine(self, *x, mul, add)
    }

    fn sigmoid(&mut self, x: &Var) -> Var {
        Tape::sigmoid(self, *x)
    }

    fn tanh(&mut self, x: &Var) -> Var {
        Tape::tanh(self, *x)
    }

    fn relu(&mut self, x: &Var) -> Var {
        Tape::relu(self, *x)
    }

    fn concat_cols(&mut self, parts: &[Var]) -> Var {
        Tape::concat_cols(self, parts)
    }

    fn slice_cols(&mut self, x: &Var, start: usize, end: usize) -> Var {
        Tape::slice_cols(self, *x, start, end)
    }

    fn reshape(&mut self, x: &Var, rows: usize, cols: usize) -> Var {
        Tape::reshape(self, *x, rows, cols)
    }

    fn row_sum(&mut self, x: &Var) -> Var {
        Tape::row_sum(self, *x)
    }

    fn softmax_rows(&mut self, x: &Var) -> Var {
        Tape::softmax_rows(self, *x)
    }
}

/// The serving engine: ops evaluate directly on [`Matrix`] values through the
/// same kernels the tape uses, with no node allocation and no gradient state.
/// Bit-identical to the tape forward by construction.
#[derive(Debug, Default, Clone, Copy)]
pub struct ValueExec;

impl ValueExec {
    pub fn new() -> Self {
        ValueExec
    }
}

impl Exec for ValueExec {
    type V = Matrix;

    fn input(&mut self, value: Matrix) -> Matrix {
        value
    }

    fn param(&mut self, params: &Params, id: ParamId) -> Matrix {
        params.value(id).clone()
    }

    fn gather(&mut self, params: &Params, id: ParamId, rows: &[usize]) -> Matrix {
        params.value(id).gather_rows(rows)
    }

    fn detach(&mut self, x: &Matrix) -> Matrix {
        x.clone()
    }

    fn value<'a>(&'a self, x: &'a Matrix) -> &'a Matrix {
        x
    }

    fn matmul(&mut self, a: &Matrix, b: &Matrix) -> Matrix {
        kernels::matmul(a, b)
    }

    fn linear(&mut self, x: &Matrix, w: &Matrix, b: &Matrix) -> Matrix {
        kernels::linear(x, w, b)
    }

    fn batched_matmul(&mut self, a: &Matrix, b: &Matrix, batch: usize, trans_b: bool) -> Matrix {
        kernels::batched_matmul(a, b, batch, trans_b)
    }

    fn add(&mut self, a: &Matrix, b: &Matrix) -> Matrix {
        kernels::add(a, b)
    }

    fn sub(&mut self, a: &Matrix, b: &Matrix) -> Matrix {
        kernels::sub(a, b)
    }

    fn mul(&mut self, a: &Matrix, b: &Matrix) -> Matrix {
        kernels::mul(a, b)
    }

    fn square(&mut self, x: &Matrix) -> Matrix {
        kernels::mul(x, x)
    }

    fn add_row(&mut self, a: &Matrix, row: &Matrix) -> Matrix {
        kernels::add_row(a, row)
    }

    fn mul_col(&mut self, a: &Matrix, col: &Matrix) -> Matrix {
        kernels::mul_col(a, col)
    }

    fn affine(&mut self, x: &Matrix, mul: f32, add: f32) -> Matrix {
        kernels::affine(x, mul, add)
    }

    fn sigmoid(&mut self, x: &Matrix) -> Matrix {
        kernels::sigmoid_map(x)
    }

    fn tanh(&mut self, x: &Matrix) -> Matrix {
        kernels::tanh_map(x)
    }

    fn relu(&mut self, x: &Matrix) -> Matrix {
        kernels::relu_map(x)
    }

    fn concat_cols(&mut self, parts: &[Matrix]) -> Matrix {
        let refs: Vec<&Matrix> = parts.iter().collect();
        kernels::concat_cols(&refs)
    }

    fn slice_cols(&mut self, x: &Matrix, start: usize, end: usize) -> Matrix {
        kernels::slice_cols(x, start, end)
    }

    fn reshape(&mut self, x: &Matrix, rows: usize, cols: usize) -> Matrix {
        kernels::reshape(x, rows, cols)
    }

    fn row_sum(&mut self, x: &Matrix) -> Matrix {
        kernels::row_sum(x)
    }

    fn softmax_rows(&mut self, x: &Matrix) -> Matrix {
        kernels::softmax_rows(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    /// Runs one composite expression through both engines and compares
    /// bitwise — every op of the vocabulary appears at least once.
    fn run_all_ops<E: Exec>(exec: &mut E, params: &Params, ids: &[ParamId]) -> Vec<Matrix> {
        let x = exec.input(Matrix::from_vec(
            4,
            3,
            vec![
                0.5, -1.0, 2.0, 3.0, 0.0, -0.5, 1.5, 2.5, -2.0, 0.1, 0.2, 0.3,
            ],
        ));
        let w = exec.param(params, ids[0]);
        let b = exec.param(params, ids[1]);
        let col = exec.input(Matrix::col_vector(&[1.0, 0.0, 0.5, 2.0]));
        let g = exec.gather(params, ids[2], &[0, 2, 1, 0]);

        let mm = exec.matmul(&x, &w);
        let lin = exec.linear(&x, &w, &b);
        let sum = exec.add(&mm, &lin);
        let diff = exec.sub(&sum, &mm);
        let prod = exec.mul(&diff, &lin);
        let sq = exec.square(&prod);
        let biased = exec.add_row(&sq, &b);
        let masked = exec.mul_col(&biased, &col);
        let aff = exec.affine(&masked, 0.3, -0.1);
        let om = exec.one_minus(&aff);
        let sc = exec.scale(&om, 1.7);
        let sg = exec.sigmoid(&sc);
        let th = exec.tanh(&sg);
        let re = exec.relu(&th);
        let cat = exec.concat_cols(&[re.clone(), g.clone()]);
        let sl = exec.slice_cols(&cat, 1, 4);
        let rs = exec.reshape(&sl, 3, 4);
        let row = exec.row_sum(&rs);
        let sm = exec.softmax_rows(&rs);
        let bm = exec.batched_matmul(&rs, &rs, 1, true);
        let det = exec.detach(&bm);
        [cat, sl, row, sm, bm, det]
            .iter()
            .map(|v| exec.value(v).clone())
            .collect()
    }

    #[test]
    fn value_exec_matches_tape_bitwise_across_the_op_vocabulary() {
        let mut rng = Rng::seed_from_u64(42);
        let mut params = Params::new();
        let ids = [
            params.add("w", Matrix::randn(3, 2, 1.0, &mut rng)),
            params.add("b", Matrix::randn(1, 2, 1.0, &mut rng)),
            params.add("emb", Matrix::randn(3, 2, 1.0, &mut rng)),
        ];
        let mut tape = Tape::new();
        let tape_out = run_all_ops(&mut tape, &params, &ids);
        let mut vx = ValueExec::new();
        let value_out = run_all_ops(&mut vx, &params, &ids);
        assert_eq!(tape_out.len(), value_out.len());
        for (i, (t, v)) in tape_out.iter().zip(&value_out).enumerate() {
            assert_eq!(t.shape(), v.shape(), "output {i}");
            assert_eq!(t.data(), v.data(), "output {i}");
        }
    }

    #[test]
    fn value_exec_has_no_state() {
        // ValueExec is a ZST: constructing it allocates nothing, and ops are
        // pure functions of their inputs.
        assert_eq!(std::mem::size_of::<ValueExec>(), 0);
        let mut vx = ValueExec::new();
        let a = vx.input(Matrix::row_vector(&[1.0, 2.0]));
        let b = vx.input(Matrix::row_vector(&[3.0, 4.0]));
        let s1 = vx.add(&a, &b);
        let s2 = vx.add(&a, &b);
        assert_eq!(s1.data(), s2.data());
    }
}
