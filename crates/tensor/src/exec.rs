//! Execution contexts: one forward implementation, two engines.
//!
//! Every layer in the workspace writes its forward math exactly once, generic
//! over [`Exec`]. Two execution contexts implement the trait:
//!
//! * [`Tape`] — the training engine. Each op records an autodiff node whose
//!   value is computed eagerly; [`Tape::backward`] later walks the nodes.
//! * [`ValueExec`] — the serving engine. The same ops run directly on
//!   [`Matrix`] values with no node bookkeeping and no gradient state.
//!
//! Both contexts dispatch every op through the same value kernels (the
//! private `kernels` module below, which the tape's own op constructors also
//! call), so the two engines are **bit-identical by construction**: there is
//! no second forward implementation that could drift, only a second way of
//! wrapping the first one. End-to-end equivalence suites
//! (`tests/exec_equivalence.rs`) pin the contract at 1 and 4 worker threads.
//!
//! The op vocabulary is exactly what the paper's models need: matmul and the
//! fused `x·W + b`, batched matmul for field self-attention, element-wise
//! arithmetic and activations, row/column broadcasts, concat/slice/reshape,
//! row-sum and row-softmax. Loss ops (`weighted_bce`, `mean_all`, …) stay
//! tape-only — serving never builds a loss.
//!
//! # Operator fusion
//!
//! On top of the primitive vocabulary the trait offers *fusable composites*
//! as default methods: [`Exec::linear_act`], [`Exec::mul_add`],
//! [`Exec::softmax_rows_scaled`], [`Exec::gather_concat`], and the
//! packed-GRU pair [`Exec::pack_gru`] / [`Exec::gru_step_packed`].
//! The defaults expand to the primitive ops, so [`Tape`] keeps its unfused
//! reference implementation (and its autodiff graph) untouched. [`ValueExec`]
//! overrides them with single-pass fused kernels whose per-element arithmetic
//! replays the unfused op sequence exactly — fused and unfused outputs are
//! bit-identical, which `tests/exec_equivalence.rs` pins at 1 and 4 threads.
//! `UAE_EXEC_FUSION=off` (or [`with_fusion`]) disables fusion for debugging.

use std::cell::Cell;
use std::sync::OnceLock;

use crate::matrix::Matrix;
use crate::params::{ParamId, Params};
use crate::tape::{Tape, Var};

pub use crate::arena;

/// Shared forward kernels. Every function here is the *single* definition of
/// its op's arithmetic: [`Tape`]'s op constructors call these to compute node
/// values, and [`ValueExec`] calls them directly. Keeping one body per op is
/// what makes the tape and value engines bit-identical by construction.
pub(crate) mod kernels {
    use crate::backend;
    use crate::matrix::Matrix;
    use crate::params::{ParamId, Params};
    use crate::tape::sigmoid;

    /// Fused embedding encode: gathers each field's table rows and the dense
    /// block straight into the concatenated output. Pure row copies into the
    /// same positions the unfused gather-then-concat sequence writes, so the
    /// result is bitwise identical while skipping every intermediate
    /// per-field matrix and the staged concat copies.
    // The row index `r` addresses three containers at once; an iterator
    // over any single one of them would obscure that symmetry.
    #[allow(clippy::needless_range_loop)]
    pub fn gather_concat(
        params: &Params,
        tables: &[ParamId],
        ids: &[Vec<usize>],
        dense: &Matrix,
    ) -> Matrix {
        assert_eq!(tables.len(), ids.len(), "gather_concat field count");
        let batch = dense.rows();
        let emb_w: usize = tables.iter().map(|&t| params.value(t).cols()).sum();
        let mut out = Matrix::uninit(batch, emb_w + dense.cols());
        for r in 0..batch {
            let row = out.row_mut(r);
            let mut off = 0;
            for (f, &t) in tables.iter().enumerate() {
                let tab = params.value(t);
                let w = tab.cols();
                row[off..off + w].copy_from_slice(tab.row(ids[f][r]));
                off += w;
            }
            row[off..].copy_from_slice(dense.row(r));
        }
        out
    }

    pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
        a.matmul(b)
    }

    /// Fused `x·W + b` (bias seeds the matmul accumulators).
    pub fn linear(x: &Matrix, w: &Matrix, b: &Matrix) -> Matrix {
        x.matmul_bias(w, b)
    }

    pub fn add(a: &Matrix, b: &Matrix) -> Matrix {
        a.zip_map(b, |x, y| x + y)
    }

    pub fn sub(a: &Matrix, b: &Matrix) -> Matrix {
        a.zip_map(b, |x, y| x - y)
    }

    pub fn mul(a: &Matrix, b: &Matrix) -> Matrix {
        a.zip_map(b, |x, y| x * y)
    }

    /// Fused `a ∘ b + c` in one pass. Per element this is `a*b + c` — the
    /// same two operations, in the same order, as the unfused mul-then-add,
    /// so the fused kernel is bitwise identical.
    pub fn mul_add(a: &Matrix, b: &Matrix, c: &Matrix) -> Matrix {
        assert_eq!(a.shape(), b.shape(), "mul_add shape mismatch");
        assert_eq!(a.shape(), c.shape(), "mul_add shape mismatch");
        let mut out = Matrix::uninit(a.rows(), a.cols());
        for (((o, &x), &y), &z) in out
            .data_mut()
            .iter_mut()
            .zip(a.data())
            .zip(b.data())
            .zip(c.data())
        {
            *o = x * y + z;
        }
        out
    }

    /// `(m×n) + (1×n)` broadcast over rows.
    pub fn add_row(a: &Matrix, bias: &Matrix) -> Matrix {
        let (m, n) = a.shape();
        assert_eq!(bias.shape(), (1, n), "add_row shape mismatch");
        let mut out = Matrix::uninit(m, n);
        for r in 0..m {
            for ((o, &x), &b) in out.row_mut(r).iter_mut().zip(a.row(r)).zip(bias.row(0)) {
                *o = x + b;
            }
        }
        out
    }

    /// `(m×n) ∘ (m×1)` broadcast over columns.
    pub fn mul_col(a: &Matrix, col: &Matrix) -> Matrix {
        let (m, n) = a.shape();
        assert_eq!(col.shape(), (m, 1), "mul_col shape mismatch");
        let mut out = Matrix::uninit(m, n);
        for r in 0..m {
            let s = col.get(r, 0);
            for (o, &x) in out.row_mut(r).iter_mut().zip(a.row(r)) {
                *o = x * s;
            }
        }
        out
    }

    /// `y = mul·x + add` element-wise.
    pub fn affine(x: &Matrix, mul: f32, add: f32) -> Matrix {
        x.map(|v| mul * v + add)
    }

    pub fn sigmoid_map(x: &Matrix) -> Matrix {
        x.map(sigmoid)
    }

    pub fn tanh_map(x: &Matrix) -> Matrix {
        x.map(f32::tanh)
    }

    pub fn relu_map(x: &Matrix) -> Matrix {
        x.map(|v| v.max(0.0))
    }

    pub fn concat_cols(parts: &[&Matrix]) -> Matrix {
        Matrix::concat_cols(parts)
    }

    pub fn slice_cols(x: &Matrix, start: usize, end: usize) -> Matrix {
        x.slice_cols(start, end)
    }

    /// Row-major reinterpretation (a pooled copy; data order unchanged).
    pub fn reshape(x: &Matrix, rows: usize, cols: usize) -> Matrix {
        assert_eq!(x.len(), rows * cols, "reshape element-count mismatch");
        let mut value = Matrix::uninit(rows, cols);
        value.data_mut().copy_from_slice(x.data());
        value
    }

    /// `(m×n) → (m×1)` summing each row.
    pub fn row_sum(x: &Matrix) -> Matrix {
        Matrix::from_fn(x.rows(), 1, |r, _| x.row(r).iter().sum())
    }

    /// Row-wise softmax (max-subtracted for stability).
    pub fn softmax_rows(v: &Matrix) -> Matrix {
        let mut value = Matrix::uninit(v.rows(), v.cols());
        for r in 0..v.rows() {
            let row = v.row(r);
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut denom = 0.0;
            for (o, &x) in value.row_mut(r).iter_mut().zip(row) {
                *o = (x - max).exp();
                denom += *o;
            }
            for o in value.row_mut(r) {
                *o /= denom;
            }
        }
        value
    }

    /// Fused scale-then-softmax: one pass instead of materialising the
    /// scaled matrix. Per element it replays `affine(x, s, 0.0)` followed by
    /// [`softmax_rows`] exactly (`s·x + 0.0`, same max/exp/divide order), so
    /// it is bit-identical to the unfused pair.
    pub fn softmax_rows_scaled(v: &Matrix, s: f32) -> Matrix {
        let mut value = Matrix::uninit(v.rows(), v.cols());
        for r in 0..v.rows() {
            let row = v.row(r);
            let max = row
                .iter()
                .map(|&x| s * x + 0.0)
                .fold(f32::NEG_INFINITY, f32::max);
            let mut denom = 0.0;
            for (o, &x) in value.row_mut(r).iter_mut().zip(row) {
                *o = ((s * x + 0.0) - max).exp();
                denom += *o;
            }
            for o in value.row_mut(r) {
                *o /= denom;
            }
        }
        value
    }

    /// Batched matrix product over 3-D tensors packed as 2-D matrices; see
    /// [`crate::tape::Tape::batched_matmul`] for the packing convention.
    pub fn batched_matmul(a: &Matrix, b: &Matrix, batch: usize, trans_b: bool) -> Matrix {
        assert!(batch > 0 && a.rows().is_multiple_of(batch) && b.rows().is_multiple_of(batch));
        let m = a.rows() / batch;
        let p = a.cols();
        let (n, out_cols);
        if trans_b {
            assert_eq!(b.cols(), p, "batched_matmul(trans_b) inner dim");
            n = b.rows() / batch;
            out_cols = n;
        } else {
            assert_eq!(b.rows() / batch, p, "batched_matmul inner dim");
            n = b.cols();
            out_cols = n;
        }
        let mut out = Matrix::uninit(batch * m, out_cols);
        backend::batched_matmul(batch, m, p, n, trans_b, a.data(), b.data(), out.data_mut());
        out
    }

    /// Fused GRU step on packed gate weights: two GEMMs (`x·[W_r|W_z|W_n]+b`
    /// and `h·[U_r|U_z|U_n]`), then one element-wise pass computing
    /// `r`, `z`, candidate `n`, the convex update, and (optionally) the
    /// per-row mask blend. Per element the arithmetic replays the unfused op
    /// sequence exactly — see [`crate::exec::Exec::gru_step_packed`]'s
    /// default body — so fused and unfused steps are bit-identical.
    // `-1.0 * v + 1.0` is kept literally: it replays the unfused
    // `affine(v, -1.0, 1.0)` arithmetic the bit-identity contract pins.
    #[allow(clippy::neg_multiply)]
    pub fn gru_step_fused(
        w: &Matrix,
        u: &Matrix,
        b: &Matrix,
        hidden: usize,
        x: &Matrix,
        h: &Matrix,
        mask: Option<&Matrix>,
    ) -> Matrix {
        let xwb = linear(x, w, b);
        let hu = matmul(h, u);
        let batch = h.rows();
        let mut out = Matrix::uninit(batch, hidden);
        for i in 0..batch {
            let xw = xwb.row(i);
            let hr = hu.row(i);
            let hrow = h.row(i);
            let (mv, inv) = match mask {
                Some(m) => {
                    let mv = m.get(i, 0);
                    // Replays `one_minus` = `affine(m, -1.0, 1.0)` exactly.
                    (mv, -1.0 * mv + 1.0)
                }
                None => (1.0, 0.0),
            };
            for (j, o) in out.row_mut(i).iter_mut().enumerate() {
                let r = sigmoid(xw[j] + hr[j]);
                let z = sigmoid(xw[hidden + j] + hr[hidden + j]);
                let n = (xw[2 * hidden + j] + r * hr[2 * hidden + j]).tanh();
                let zh = z * hrow[j];
                let omz = -1.0 * z + 1.0;
                let cand = zh + omz * n;
                *o = if mask.is_some() {
                    cand * mv + hrow[j] * inv
                } else {
                    cand
                };
            }
        }
        out
    }
}

// ----------------------------------------------------------- fusion config

fn env_fusion() -> bool {
    static ENV: OnceLock<bool> = OnceLock::new();
    *ENV.get_or_init(|| {
        !matches!(
            std::env::var("UAE_EXEC_FUSION").as_deref(),
            Ok("off") | Ok("0") | Ok("false")
        )
    })
}

thread_local! {
    static FUSION_OVERRIDE: Cell<Option<bool>> = const { Cell::new(None) };
    static PARAM_MATERIALIZATIONS: Cell<u64> = const { Cell::new(0) };
}

/// Whether [`ValueExec::new`] builds a fusing engine: the per-thread override
/// if set (see [`with_fusion`]), else `UAE_EXEC_FUSION` (default on).
pub fn fusion_enabled() -> bool {
    FUSION_OVERRIDE.with(Cell::get).unwrap_or_else(env_fusion)
}

/// Runs `f` with fusion force-enabled or force-disabled on this thread
/// (scoped, panic-safe) — for equivalence tests and benches.
pub fn with_fusion<R>(on: bool, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<bool>);
    impl Drop for Restore {
        fn drop(&mut self) {
            FUSION_OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let _guard = Restore(FUSION_OVERRIDE.with(|c| c.replace(Some(on))));
    f()
}

/// Inference-engine counters for the calling thread.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Parameter matrices deep-copied by [`ValueExec::param`]. Hoisted layer
    /// vars make this independent of sequence length, and frozen (shared)
    /// serving params don't count at all — their clones are O(1) handle
    /// copies. The regression counter for per-step/per-batch param memcpys.
    pub param_materializations: u64,
}

/// Snapshot of this thread's [`ExecStats`].
pub fn exec_stats() -> ExecStats {
    ExecStats {
        param_materializations: PARAM_MATERIALIZATIONS.with(Cell::get),
    }
}

/// Zeroes this thread's [`ExecStats`].
pub fn reset_exec_stats() {
    PARAM_MATERIALIZATIONS.with(|c| c.set(0));
}

// -------------------------------------------------------------- fusion types

/// Activation selector for the fused dense layer [`Exec::linear_act`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActKind {
    None,
    Relu,
    Tanh,
    Sigmoid,
}

/// Borrowed per-gate GRU parameters handed to [`Exec::pack_gru`], in the
/// fixed `r, z, n` gate order.
pub struct GruGates<'a, V> {
    pub w_r: &'a V,
    pub u_r: &'a V,
    pub b_r: &'a V,
    pub w_z: &'a V,
    pub u_z: &'a V,
    pub b_z: &'a V,
    pub w_n: &'a V,
    pub u_n: &'a V,
    pub b_n: &'a V,
}

/// Column-packed GRU gate parameters produced by [`Exec::pack_gru`]:
/// `w: in×3h = [W_r|W_z|W_n]`, `u: h×3h = [U_r|U_z|U_n]`, `b: 1×3h`.
#[derive(Debug, Clone)]
pub struct GruPacked<V> {
    pub w: V,
    pub u: V,
    pub b: V,
    pub hidden: usize,
}

/// An execution context for forward passes.
///
/// `V` is the context's value handle: [`Var`] on a [`Tape`] (a node index
/// whose value lives on the tape), a plain [`Matrix`] under [`ValueExec`].
/// Layers take handles by reference and return fresh handles, so one generic
/// forward body serves both training and tape-free inference.
pub trait Exec {
    /// Value handle (`Var` on the tape, `Matrix` tape-free).
    type V: Clone;

    /// A constant leaf (inputs, masks, …). Never receives gradient.
    fn input(&mut self, value: Matrix) -> Self::V;

    /// A trainable-parameter leaf snapshotted from `params`.
    fn param(&mut self, params: &Params, id: ParamId) -> Self::V;

    /// Gathers `rows` of parameter table `id` (embedding lookup).
    fn gather(&mut self, params: &Params, id: ParamId, rows: &[usize]) -> Self::V;

    /// Blocks gradient flow: on the tape the value re-enters as a constant
    /// leaf; tape-free it is a plain copy (detaching values is a no-op).
    fn detach(&mut self, x: &Self::V) -> Self::V;

    /// The forward value behind a handle.
    fn value<'a>(&'a self, x: &'a Self::V) -> &'a Matrix;

    /// Matrix product.
    fn matmul(&mut self, a: &Self::V, b: &Self::V) -> Self::V;

    /// Fused dense layer `x·W + b`.
    fn linear(&mut self, x: &Self::V, w: &Self::V, b: &Self::V) -> Self::V;

    /// Batched matrix product over packed 3-D tensors
    /// (see [`Tape::batched_matmul`] for the packing convention).
    fn batched_matmul(&mut self, a: &Self::V, b: &Self::V, batch: usize, trans_b: bool) -> Self::V;

    /// Element-wise sum.
    fn add(&mut self, a: &Self::V, b: &Self::V) -> Self::V;

    /// Element-wise difference.
    fn sub(&mut self, a: &Self::V, b: &Self::V) -> Self::V;

    /// Element-wise (Hadamard) product.
    fn mul(&mut self, a: &Self::V, b: &Self::V) -> Self::V;

    /// Element-wise square.
    fn square(&mut self, x: &Self::V) -> Self::V {
        self.mul(&x.clone(), x)
    }

    /// Adds a `1×n` row vector to every row of an `m×n` matrix (bias add).
    fn add_row(&mut self, a: &Self::V, row: &Self::V) -> Self::V;

    /// Multiplies every row of an `m×n` matrix by the matching entry of an
    /// `m×1` column (per-sample mask/weight).
    fn mul_col(&mut self, a: &Self::V, col: &Self::V) -> Self::V;

    /// `y = mul·x + add` element-wise.
    fn affine(&mut self, x: &Self::V, mul: f32, add: f32) -> Self::V;

    /// `1 − x` element-wise.
    fn one_minus(&mut self, x: &Self::V) -> Self::V {
        self.affine(x, -1.0, 1.0)
    }

    /// `s · x`.
    fn scale(&mut self, x: &Self::V, s: f32) -> Self::V {
        self.affine(x, s, 0.0)
    }

    fn sigmoid(&mut self, x: &Self::V) -> Self::V;

    fn tanh(&mut self, x: &Self::V) -> Self::V;

    fn relu(&mut self, x: &Self::V) -> Self::V;

    /// Horizontal concatenation (parts are borrowed: no engine needs to
    /// deep-copy a `Matrix` just to concatenate it).
    fn concat_cols(&mut self, parts: &[&Self::V]) -> Self::V;

    /// Copies out columns `[start, end)`.
    fn slice_cols(&mut self, x: &Self::V, start: usize, end: usize) -> Self::V;

    /// Row-major reshape.
    fn reshape(&mut self, x: &Self::V, rows: usize, cols: usize) -> Self::V;

    /// Per-row sum: `(m×n) → (m×1)`.
    fn row_sum(&mut self, x: &Self::V) -> Self::V;

    /// Row-wise softmax.
    fn softmax_rows(&mut self, x: &Self::V) -> Self::V;

    // ------------------------------------------------------ fusable composites

    /// Dense layer followed by an activation. The default expands to
    /// [`Exec::linear`] + the activation op (what the tape records);
    /// [`ValueExec`] fuses the activation into the GEMM output pass.
    fn linear_act(&mut self, x: &Self::V, w: &Self::V, b: &Self::V, act: ActKind) -> Self::V {
        let y = self.linear(x, w, b);
        match act {
            ActKind::None => y,
            ActKind::Relu => self.relu(&y),
            ActKind::Tanh => self.tanh(&y),
            ActKind::Sigmoid => self.sigmoid(&y),
        }
    }

    /// Embedding encode: gathers each field's rows from its table and
    /// concatenates them with the dense block,
    /// `[T₀[ids₀] | … | T_F[ids_F] | dense]`. The default expands to
    /// per-field [`Exec::gather`]s + [`Exec::input`] + one
    /// [`Exec::concat_cols`] (preserving gradient flow into every table on
    /// the tape); [`ValueExec`] fuses the whole encode into one write of the
    /// output buffer — pure row copies, so bitwise identical.
    fn gather_concat(
        &mut self,
        params: &Params,
        tables: &[ParamId],
        ids: &[Vec<usize>],
        dense: &Matrix,
    ) -> Self::V {
        let mut parts: Vec<Self::V> = tables
            .iter()
            .zip(ids)
            .map(|(&t, i)| self.gather(params, t, i))
            .collect();
        parts.push(self.input(dense.clone()));
        let refs: Vec<&Self::V> = parts.iter().collect();
        self.concat_cols(&refs)
    }

    /// `a ∘ b + c` element-wise (the DCN cross-layer residual pattern).
    /// The default expands to [`Exec::mul`] + [`Exec::add`] (what the tape
    /// records); [`ValueExec`] fuses both into a single pass, which is
    /// bitwise identical because each element is `a*b + c` either way.
    fn mul_add(&mut self, a: &Self::V, b: &Self::V, c: &Self::V) -> Self::V {
        let t = self.mul(a, b);
        self.add(&t, c)
    }

    /// `softmax_rows(s · x)`. The default expands to [`Exec::scale`] +
    /// [`Exec::softmax_rows`]; [`ValueExec`] fuses the scale into the
    /// softmax's max/exp passes.
    fn softmax_rows_scaled(&mut self, x: &Self::V, s: f32) -> Self::V {
        let y = self.scale(x, s);
        self.softmax_rows(&y)
    }

    /// Packs the nine per-gate GRU parameters into column-blocked `[r|z|n]`
    /// matrices for [`Exec::gru_step_packed`]. Returning `None` (the
    /// default, and the tape's behaviour) keeps the caller on the unfused
    /// per-gate step. Engines only return `Some` when the packed step is
    /// bit-identical to the unfused one for these shapes.
    fn pack_gru(&mut self, gates: GruGates<'_, Self::V>) -> Option<GruPacked<Self::V>> {
        let _ = gates;
        None
    }

    /// One GRU step on packed gates: `r = σ(x·W_r+b_r + h·U_r)`,
    /// `z = σ(x·W_z+b_z + h·U_z)`, `n = tanh(x·W_n+b_n + r∘(h·U_n))`,
    /// `h' = z∘h + (1−z)∘n`, optionally blended per row with `mask`
    /// (`h' ∘ m + h ∘ (1−m)`).
    ///
    /// The default body computes the packed GEMMs and then replays the
    /// unfused op sequence on column slices — bit-identical to per-gate
    /// matmuls because the blocked GEMM accumulates each output element
    /// independently, k-ascending. [`ValueExec`] overrides with a
    /// single-pass fused kernel.
    fn gru_step_packed(
        &mut self,
        p: &GruPacked<Self::V>,
        x: &Self::V,
        h: &Self::V,
        mask: Option<&Self::V>,
    ) -> Self::V {
        let hid = p.hidden;
        let xwb = self.linear(x, &p.w, &p.b);
        let hu = self.matmul(h, &p.u);
        let xw_r = self.slice_cols(&xwb, 0, hid);
        let xw_z = self.slice_cols(&xwb, hid, 2 * hid);
        let xw_n = self.slice_cols(&xwb, 2 * hid, 3 * hid);
        let hu_r = self.slice_cols(&hu, 0, hid);
        let hu_z = self.slice_cols(&hu, hid, 2 * hid);
        let hu_n = self.slice_cols(&hu, 2 * hid, 3 * hid);
        let pre_r = self.add(&xw_r, &hu_r);
        let r = self.sigmoid(&pre_r);
        let pre_z = self.add(&xw_z, &hu_z);
        let z = self.sigmoid(&pre_z);
        let rhu = self.mul(&r, &hu_n);
        let pre_n = self.add(&xw_n, &rhu);
        let n = self.tanh(&pre_n);
        let zh = self.mul(&z, h);
        let omz = self.one_minus(&z);
        let zn = self.mul(&omz, &n);
        let cand = self.add(&zh, &zn);
        match mask {
            None => cand,
            Some(m) => {
                let kept = self.mul_col(&cand, m);
                let inv = self.one_minus(m);
                let carried = self.mul_col(h, &inv);
                self.add(&kept, &carried)
            }
        }
    }
}

/// The training engine: every op records an autodiff node (see [`Tape`]'s
/// inherent methods, which this impl delegates to one-for-one).
impl Exec for Tape {
    type V = Var;

    fn input(&mut self, value: Matrix) -> Var {
        Tape::input(self, value)
    }

    fn param(&mut self, params: &Params, id: ParamId) -> Var {
        Tape::param(self, params, id)
    }

    fn gather(&mut self, params: &Params, id: ParamId, rows: &[usize]) -> Var {
        Tape::gather(self, params, id, rows)
    }

    fn detach(&mut self, x: &Var) -> Var {
        let v = Tape::value(self, *x).clone();
        Tape::input(self, v)
    }

    fn value<'a>(&'a self, x: &'a Var) -> &'a Matrix {
        Tape::value(self, *x)
    }

    fn matmul(&mut self, a: &Var, b: &Var) -> Var {
        Tape::matmul(self, *a, *b)
    }

    fn linear(&mut self, x: &Var, w: &Var, b: &Var) -> Var {
        Tape::linear(self, *x, *w, *b)
    }

    fn batched_matmul(&mut self, a: &Var, b: &Var, batch: usize, trans_b: bool) -> Var {
        Tape::batched_matmul(self, *a, *b, batch, trans_b)
    }

    fn add(&mut self, a: &Var, b: &Var) -> Var {
        Tape::add(self, *a, *b)
    }

    fn sub(&mut self, a: &Var, b: &Var) -> Var {
        Tape::sub(self, *a, *b)
    }

    fn mul(&mut self, a: &Var, b: &Var) -> Var {
        Tape::mul(self, *a, *b)
    }

    fn square(&mut self, x: &Var) -> Var {
        Tape::square(self, *x)
    }

    fn add_row(&mut self, a: &Var, row: &Var) -> Var {
        Tape::add_row(self, *a, *row)
    }

    fn mul_col(&mut self, a: &Var, col: &Var) -> Var {
        Tape::mul_col(self, *a, *col)
    }

    fn affine(&mut self, x: &Var, mul: f32, add: f32) -> Var {
        Tape::affine(self, *x, mul, add)
    }

    fn sigmoid(&mut self, x: &Var) -> Var {
        Tape::sigmoid(self, *x)
    }

    fn tanh(&mut self, x: &Var) -> Var {
        Tape::tanh(self, *x)
    }

    fn relu(&mut self, x: &Var) -> Var {
        Tape::relu(self, *x)
    }

    fn concat_cols(&mut self, parts: &[&Var]) -> Var {
        let vars: Vec<Var> = parts.iter().map(|p| **p).collect();
        Tape::concat_cols(self, &vars)
    }

    fn slice_cols(&mut self, x: &Var, start: usize, end: usize) -> Var {
        Tape::slice_cols(self, *x, start, end)
    }

    fn reshape(&mut self, x: &Var, rows: usize, cols: usize) -> Var {
        Tape::reshape(self, *x, rows, cols)
    }

    fn row_sum(&mut self, x: &Var) -> Var {
        Tape::row_sum(self, *x)
    }

    fn softmax_rows(&mut self, x: &Var) -> Var {
        Tape::softmax_rows(self, *x)
    }
}

/// The serving engine: ops evaluate directly on [`Matrix`] values through the
/// same kernels the tape uses, with no node allocation and no gradient state.
/// Bit-identical to the tape forward by construction.
///
/// The only state is the fusion flag, snapshotted from
/// [`fusion_enabled`] at construction: when set, the fusable composites
/// ([`Exec::linear_act`], [`Exec::softmax_rows_scaled`],
/// [`Exec::pack_gru`]/[`Exec::gru_step_packed`]) run single-pass fused
/// kernels that are bit-identical to their unfused expansions.
#[derive(Debug, Clone, Copy)]
pub struct ValueExec {
    fused: bool,
}

impl ValueExec {
    /// An engine honouring the ambient fusion config (`UAE_EXEC_FUSION` /
    /// [`with_fusion`]).
    pub fn new() -> Self {
        ValueExec {
            fused: fusion_enabled(),
        }
    }

    /// An engine with fusion pinned, independent of the environment.
    pub fn with_fusion(fused: bool) -> Self {
        ValueExec { fused }
    }
}

impl Default for ValueExec {
    fn default() -> Self {
        ValueExec::new()
    }
}

impl Exec for ValueExec {
    type V = Matrix;

    fn input(&mut self, value: Matrix) -> Matrix {
        value
    }

    fn param(&mut self, params: &Params, id: ParamId) -> Matrix {
        let v = params.value(id);
        if !v.is_shared() {
            // Frozen serving params clone as shared handles — only genuine
            // deep copies count against the materialization budget.
            PARAM_MATERIALIZATIONS.with(|c| c.set(c.get() + 1));
        }
        v.clone()
    }

    fn gather(&mut self, params: &Params, id: ParamId, rows: &[usize]) -> Matrix {
        params.value(id).gather_rows(rows)
    }

    fn detach(&mut self, x: &Matrix) -> Matrix {
        x.clone()
    }

    fn value<'a>(&'a self, x: &'a Matrix) -> &'a Matrix {
        x
    }

    fn matmul(&mut self, a: &Matrix, b: &Matrix) -> Matrix {
        kernels::matmul(a, b)
    }

    fn linear(&mut self, x: &Matrix, w: &Matrix, b: &Matrix) -> Matrix {
        kernels::linear(x, w, b)
    }

    fn batched_matmul(&mut self, a: &Matrix, b: &Matrix, batch: usize, trans_b: bool) -> Matrix {
        kernels::batched_matmul(a, b, batch, trans_b)
    }

    fn add(&mut self, a: &Matrix, b: &Matrix) -> Matrix {
        kernels::add(a, b)
    }

    fn sub(&mut self, a: &Matrix, b: &Matrix) -> Matrix {
        kernels::sub(a, b)
    }

    fn mul(&mut self, a: &Matrix, b: &Matrix) -> Matrix {
        kernels::mul(a, b)
    }

    fn square(&mut self, x: &Matrix) -> Matrix {
        kernels::mul(x, x)
    }

    fn add_row(&mut self, a: &Matrix, row: &Matrix) -> Matrix {
        kernels::add_row(a, row)
    }

    fn mul_col(&mut self, a: &Matrix, col: &Matrix) -> Matrix {
        kernels::mul_col(a, col)
    }

    fn affine(&mut self, x: &Matrix, mul: f32, add: f32) -> Matrix {
        kernels::affine(x, mul, add)
    }

    fn sigmoid(&mut self, x: &Matrix) -> Matrix {
        kernels::sigmoid_map(x)
    }

    fn tanh(&mut self, x: &Matrix) -> Matrix {
        kernels::tanh_map(x)
    }

    fn relu(&mut self, x: &Matrix) -> Matrix {
        kernels::relu_map(x)
    }

    fn concat_cols(&mut self, parts: &[&Matrix]) -> Matrix {
        kernels::concat_cols(parts)
    }

    fn slice_cols(&mut self, x: &Matrix, start: usize, end: usize) -> Matrix {
        kernels::slice_cols(x, start, end)
    }

    fn reshape(&mut self, x: &Matrix, rows: usize, cols: usize) -> Matrix {
        kernels::reshape(x, rows, cols)
    }

    fn row_sum(&mut self, x: &Matrix) -> Matrix {
        kernels::row_sum(x)
    }

    fn softmax_rows(&mut self, x: &Matrix) -> Matrix {
        kernels::softmax_rows(x)
    }

    fn linear_act(&mut self, x: &Matrix, w: &Matrix, b: &Matrix, act: ActKind) -> Matrix {
        let mut y = kernels::linear(x, w, b);
        if self.fused {
            // In-place activation on the GEMM output: one matrix instead of
            // two, same per-element functions as the unfused maps.
            match act {
                ActKind::None => {}
                ActKind::Relu => y.apply(|v| v.max(0.0)),
                ActKind::Tanh => y.apply(f32::tanh),
                ActKind::Sigmoid => y.apply(crate::tape::sigmoid),
            }
            y
        } else {
            match act {
                ActKind::None => y,
                ActKind::Relu => kernels::relu_map(&y),
                ActKind::Tanh => kernels::tanh_map(&y),
                ActKind::Sigmoid => kernels::sigmoid_map(&y),
            }
        }
    }

    fn gather_concat(
        &mut self,
        params: &Params,
        tables: &[ParamId],
        ids: &[Vec<usize>],
        dense: &Matrix,
    ) -> Matrix {
        if self.fused {
            kernels::gather_concat(params, tables, ids, dense)
        } else {
            let mut parts: Vec<Matrix> = tables
                .iter()
                .zip(ids)
                .map(|(&t, i)| params.value(t).gather_rows(i))
                .collect();
            parts.push(dense.clone());
            kernels::concat_cols(&parts.iter().collect::<Vec<_>>())
        }
    }

    fn mul_add(&mut self, a: &Matrix, b: &Matrix, c: &Matrix) -> Matrix {
        if self.fused {
            kernels::mul_add(a, b, c)
        } else {
            let t = kernels::mul(a, b);
            kernels::add(&t, c)
        }
    }

    fn softmax_rows_scaled(&mut self, x: &Matrix, s: f32) -> Matrix {
        if self.fused {
            kernels::softmax_rows_scaled(x, s)
        } else {
            let y = kernels::affine(x, s, 0.0);
            kernels::softmax_rows(&y)
        }
    }

    fn pack_gru(&mut self, g: GruGates<'_, Matrix>) -> Option<GruPacked<Matrix>> {
        let hidden = g.u_r.cols();
        // hidden == 1 would route the unfused per-gate GEMMs through the
        // n == 1 lane kernel while the packed GEMM (n = 3) stays blocked —
        // different summation orders. Skip packing so fused stays
        // bit-identical to the tape oracle at every shape.
        if !self.fused || hidden <= 1 {
            return None;
        }
        Some(GruPacked {
            w: kernels::concat_cols(&[g.w_r, g.w_z, g.w_n]),
            u: kernels::concat_cols(&[g.u_r, g.u_z, g.u_n]),
            b: kernels::concat_cols(&[g.b_r, g.b_z, g.b_n]),
            hidden,
        })
    }

    fn gru_step_packed(
        &mut self,
        p: &GruPacked<Matrix>,
        x: &Matrix,
        h: &Matrix,
        mask: Option<&Matrix>,
    ) -> Matrix {
        kernels::gru_step_fused(&p.w, &p.u, &p.b, p.hidden, x, h, mask)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    /// Runs one composite expression through both engines and compares
    /// bitwise — every op of the vocabulary appears at least once.
    fn run_all_ops<E: Exec>(exec: &mut E, params: &Params, ids: &[ParamId]) -> Vec<Matrix> {
        let x = exec.input(Matrix::from_vec(
            4,
            3,
            vec![
                0.5, -1.0, 2.0, 3.0, 0.0, -0.5, 1.5, 2.5, -2.0, 0.1, 0.2, 0.3,
            ],
        ));
        let w = exec.param(params, ids[0]);
        let b = exec.param(params, ids[1]);
        let col = exec.input(Matrix::col_vector(&[1.0, 0.0, 0.5, 2.0]));
        let g = exec.gather(params, ids[2], &[0, 2, 1, 0]);

        let mm = exec.matmul(&x, &w);
        let lin = exec.linear(&x, &w, &b);
        let la = exec.linear_act(&x, &w, &b, ActKind::Tanh);
        let sum = exec.add(&mm, &lin);
        let diff = exec.sub(&sum, &mm);
        let prod = exec.mul(&diff, &lin);
        let fma = exec.mul_add(&prod, &diff, &lin);
        let sq = exec.square(&fma);
        let biased = exec.add_row(&sq, &b);
        let masked = exec.mul_col(&biased, &col);
        let aff = exec.affine(&masked, 0.3, -0.1);
        let om = exec.one_minus(&aff);
        let sc = exec.scale(&om, 1.7);
        let sg = exec.sigmoid(&sc);
        let th = exec.tanh(&sg);
        let re = exec.relu(&th);
        let cat = exec.concat_cols(&[&re, &g]);
        let sl = exec.slice_cols(&cat, 1, 4);
        let rs = exec.reshape(&sl, 3, 4);
        let row = exec.row_sum(&rs);
        let sm = exec.softmax_rows(&rs);
        let sms = exec.softmax_rows_scaled(&rs, 0.37);
        let bm = exec.batched_matmul(&rs, &rs, 1, true);
        let det = exec.detach(&bm);
        let gc = exec.gather_concat(
            params,
            &[ids[2], ids[2]],
            &[vec![0, 2, 1, 0], vec![1, 1, 0, 2]],
            &Matrix::from_vec(4, 2, vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8]),
        );
        [cat, sl, row, sm, sms, la, bm, det, gc]
            .iter()
            .map(|v| exec.value(v).clone())
            .collect()
    }

    #[test]
    fn value_exec_matches_tape_bitwise_across_the_op_vocabulary() {
        let mut rng = Rng::seed_from_u64(42);
        let mut params = Params::new();
        let ids = [
            params.add("w", Matrix::randn(3, 2, 1.0, &mut rng)),
            params.add("b", Matrix::randn(1, 2, 1.0, &mut rng)),
            params.add("emb", Matrix::randn(3, 2, 1.0, &mut rng)),
        ];
        let mut tape = Tape::new();
        let tape_out = run_all_ops(&mut tape, &params, &ids);
        for fused in [false, true] {
            let mut vx = ValueExec::with_fusion(fused);
            let value_out = run_all_ops(&mut vx, &params, &ids);
            assert_eq!(tape_out.len(), value_out.len());
            for (i, (t, v)) in tape_out.iter().zip(&value_out).enumerate() {
                assert_eq!(t.shape(), v.shape(), "fused={fused}, output {i}");
                assert_eq!(t.data(), v.data(), "fused={fused}, output {i}");
            }
        }
    }

    #[test]
    fn value_exec_is_one_flag_and_ops_are_pure() {
        // ValueExec carries only the fusion flag — no per-op state, nothing
        // heap-allocated — and ops are pure functions of their inputs.
        assert_eq!(std::mem::size_of::<ValueExec>(), 1);
        let mut vx = ValueExec::new();
        let a = vx.input(Matrix::row_vector(&[1.0, 2.0]));
        let b = vx.input(Matrix::row_vector(&[3.0, 4.0]));
        let s1 = vx.add(&a, &b);
        let s2 = vx.add(&a, &b);
        assert_eq!(s1.data(), s2.data());
    }

    #[test]
    fn fused_linear_act_matches_unfused_bitwise() {
        let mut rng = Rng::seed_from_u64(7);
        // Ragged width 13 exercises lane-kernel tails; 1 output unit
        // exercises the n == 1 matvec path.
        for (k, n) in [(13, 5), (32, 13), (9, 1)] {
            let x = Matrix::randn(6, k, 1.0, &mut rng);
            let w = Matrix::randn(k, n, 1.0, &mut rng);
            let b = Matrix::randn(1, n, 1.0, &mut rng);
            for act in [
                ActKind::None,
                ActKind::Relu,
                ActKind::Tanh,
                ActKind::Sigmoid,
            ] {
                let fused = ValueExec::with_fusion(true).linear_act(&x, &w, &b, act);
                let unfused = ValueExec::with_fusion(false).linear_act(&x, &w, &b, act);
                assert_eq!(fused.data(), unfused.data(), "k={k} n={n} {act:?}");
            }
        }
    }

    #[test]
    fn fused_scaled_softmax_matches_unfused_bitwise() {
        let mut rng = Rng::seed_from_u64(8);
        for cols in [1, 7, 17] {
            let x = Matrix::randn(5, cols, 2.0, &mut rng);
            for s in [0.25, 1.0, -0.6] {
                let fused = ValueExec::with_fusion(true).softmax_rows_scaled(&x, s);
                let unfused = ValueExec::with_fusion(false).softmax_rows_scaled(&x, s);
                assert_eq!(fused.data(), unfused.data(), "cols={cols} s={s}");
            }
        }
        // All-zero rows hit the ±0.0 corner of the fused max pass.
        let zeros = Matrix::zeros(2, 4);
        let fused = ValueExec::with_fusion(true).softmax_rows_scaled(&zeros, 3.0);
        let unfused = ValueExec::with_fusion(false).softmax_rows_scaled(&zeros, 3.0);
        assert_eq!(fused.data(), unfused.data());
    }

    #[test]
    fn packed_gru_step_matches_unfused_reference_bitwise() {
        let mut rng = Rng::seed_from_u64(11);
        // Ragged hidden sizes (non-multiples of the lane widths) and an
        // empty batch.
        for (batch, in_dim, hidden) in [(4, 6, 5), (3, 9, 17), (0, 4, 3)] {
            let gates: Vec<Matrix> = (0..3)
                .flat_map(|_| {
                    [
                        Matrix::randn(in_dim, hidden, 0.5, &mut rng),
                        Matrix::randn(hidden, hidden, 0.5, &mut rng),
                        Matrix::randn(1, hidden, 0.5, &mut rng),
                    ]
                })
                .collect();
            let x = Matrix::randn(batch, in_dim, 1.0, &mut rng);
            let h = Matrix::randn(batch, hidden, 1.0, &mut rng);
            let mask = Matrix::from_fn(batch, 1, |r, _| if r % 2 == 0 { 1.0 } else { 0.0 });
            let g = GruGates {
                w_r: &gates[0],
                u_r: &gates[1],
                b_r: &gates[2],
                w_z: &gates[3],
                u_z: &gates[4],
                b_z: &gates[5],
                w_n: &gates[6],
                u_n: &gates[7],
                b_n: &gates[8],
            };
            let mut fused_vx = ValueExec::with_fusion(true);
            let packed = fused_vx.pack_gru(g).expect("fused engine packs");
            for m in [None, Some(&mask)] {
                let fused = fused_vx.gru_step_packed(&packed, &x, &h, m);
                // Reference: the default (sliced, unfused-op) body, forced by
                // calling it through a non-overriding wrapper.
                struct NoFuse(ValueExec);
                impl Exec for NoFuse {
                    type V = Matrix;
                    fn input(&mut self, v: Matrix) -> Matrix {
                        self.0.input(v)
                    }
                    fn param(&mut self, p: &Params, id: ParamId) -> Matrix {
                        self.0.param(p, id)
                    }
                    fn gather(&mut self, p: &Params, id: ParamId, r: &[usize]) -> Matrix {
                        self.0.gather(p, id, r)
                    }
                    fn detach(&mut self, x: &Matrix) -> Matrix {
                        self.0.detach(x)
                    }
                    fn value<'a>(&'a self, x: &'a Matrix) -> &'a Matrix {
                        x
                    }
                    fn matmul(&mut self, a: &Matrix, b: &Matrix) -> Matrix {
                        self.0.matmul(a, b)
                    }
                    fn linear(&mut self, x: &Matrix, w: &Matrix, b: &Matrix) -> Matrix {
                        self.0.linear(x, w, b)
                    }
                    fn batched_matmul(
                        &mut self,
                        a: &Matrix,
                        b: &Matrix,
                        batch: usize,
                        t: bool,
                    ) -> Matrix {
                        self.0.batched_matmul(a, b, batch, t)
                    }
                    fn add(&mut self, a: &Matrix, b: &Matrix) -> Matrix {
                        self.0.add(a, b)
                    }
                    fn sub(&mut self, a: &Matrix, b: &Matrix) -> Matrix {
                        self.0.sub(a, b)
                    }
                    fn mul(&mut self, a: &Matrix, b: &Matrix) -> Matrix {
                        self.0.mul(a, b)
                    }
                    fn add_row(&mut self, a: &Matrix, r: &Matrix) -> Matrix {
                        self.0.add_row(a, r)
                    }
                    fn mul_col(&mut self, a: &Matrix, c: &Matrix) -> Matrix {
                        self.0.mul_col(a, c)
                    }
                    fn affine(&mut self, x: &Matrix, m: f32, a: f32) -> Matrix {
                        self.0.affine(x, m, a)
                    }
                    fn sigmoid(&mut self, x: &Matrix) -> Matrix {
                        self.0.sigmoid(x)
                    }
                    fn tanh(&mut self, x: &Matrix) -> Matrix {
                        self.0.tanh(x)
                    }
                    fn relu(&mut self, x: &Matrix) -> Matrix {
                        self.0.relu(x)
                    }
                    fn concat_cols(&mut self, p: &[&Matrix]) -> Matrix {
                        self.0.concat_cols(p)
                    }
                    fn slice_cols(&mut self, x: &Matrix, s: usize, e: usize) -> Matrix {
                        self.0.slice_cols(x, s, e)
                    }
                    fn reshape(&mut self, x: &Matrix, r: usize, c: usize) -> Matrix {
                        self.0.reshape(x, r, c)
                    }
                    fn row_sum(&mut self, x: &Matrix) -> Matrix {
                        self.0.row_sum(x)
                    }
                    fn softmax_rows(&mut self, x: &Matrix) -> Matrix {
                        self.0.softmax_rows(x)
                    }
                }
                let reference =
                    NoFuse(ValueExec::with_fusion(false)).gru_step_packed(&packed, &x, &h, m);
                assert_eq!(
                    fused.data(),
                    reference.data(),
                    "batch={batch} hidden={hidden} mask={}",
                    m.is_some()
                );
            }
        }
    }

    #[test]
    fn frozen_params_skip_materialization_count() {
        let mut rng = Rng::seed_from_u64(21);
        let mut params = Params::new();
        let w = params.add("w", Matrix::randn(4, 4, 1.0, &mut rng));
        let mut exec = ValueExec::new();

        reset_exec_stats();
        let deep = exec.param(&params, w);
        let _ = exec.param(&params, w);
        assert_eq!(exec_stats().param_materializations, 2);

        params.freeze();
        reset_exec_stats();
        let shared = exec.param(&params, w);
        let _ = exec.param(&params, w);
        assert_eq!(
            exec_stats().param_materializations,
            0,
            "frozen params must clone as handles, not memcpys"
        );
        assert!(shared.is_shared());
        assert_eq!(shared, deep, "freezing must not change values");
        reset_exec_stats();
    }
}
