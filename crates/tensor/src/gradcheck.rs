//! Finite-difference gradient checking utilities.
//!
//! These helpers are exported (not test-only) so downstream crates can verify
//! that their composed layers (GRU, AutoInt, cross layers, the UAE risks)
//! backpropagate correctly — the single most important correctness property
//! of a from-scratch autodiff engine.

use crate::matrix::Matrix;
use crate::params::{ParamId, Params};
use crate::tape::{Tape, Var};

/// Result of a gradient check: worst relative error over all checked scalars.
#[derive(Debug, Clone, Copy)]
pub struct GradCheck {
    /// Maximum relative error between analytic and numeric gradient.
    pub max_rel_err: f32,
    /// Number of scalar entries compared.
    pub checked: usize,
}

impl GradCheck {
    /// True if the worst relative error is below `tol`.
    pub fn passes(&self, tol: f32) -> bool {
        self.max_rel_err < tol
    }
}

fn rel_err(analytic: f32, numeric: f32) -> f32 {
    let denom = analytic.abs().max(numeric.abs()).max(1e-3);
    (analytic - numeric).abs() / denom
}

/// Checks the analytic gradients of all parameters against central finite
/// differences of the scalar loss produced by `build`.
///
/// `build` is invoked repeatedly with (fresh tape, current params) and must
/// return the loss [`Var`]. Uses `f32` arithmetic, so `eps` around `1e-2` and
/// tolerances around `2e-2` are realistic; the engine's own unit tests use
/// small magnitudes to keep cancellation error low.
pub fn check_params(
    params: &mut Params,
    eps: f32,
    build: impl Fn(&mut Tape, &Params) -> Var,
) -> GradCheck {
    // Analytic pass.
    params.zero_grads();
    let mut tape = Tape::new();
    let loss = build(&mut tape, params);
    tape.backward(loss, params);
    let analytic: Vec<Matrix> = params.ids().map(|id| params.grad(id).clone()).collect();

    let mut max_rel_err = 0.0f32;
    let mut checked = 0usize;
    let ids: Vec<ParamId> = params.ids().collect();
    for (pi, &id) in ids.iter().enumerate() {
        for k in 0..params.value(id).len() {
            let original = params.value(id).data()[k];

            params.value_mut(id).data_mut()[k] = original + eps;
            let mut tp = Tape::new();
            let lp = build(&mut tp, params);
            let up = tp.value(lp).item();

            params.value_mut(id).data_mut()[k] = original - eps;
            let mut tm = Tape::new();
            let lm = build(&mut tm, params);
            let down = tm.value(lm).item();

            params.value_mut(id).data_mut()[k] = original;

            let numeric = (up - down) / (2.0 * eps);
            let a = analytic[pi].data()[k];
            max_rel_err = max_rel_err.max(rel_err(a, numeric));
            checked += 1;
        }
    }
    GradCheck {
        max_rel_err,
        checked,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    /// Exercises (almost) every op in one composite graph and checks its
    /// gradients numerically.
    #[test]
    fn composite_graph_gradcheck() {
        let mut rng = Rng::seed_from_u64(1234);
        let mut params = Params::new();
        let w1 = params.add("w1", Matrix::randn(3, 4, 0.4, &mut rng));
        let b1 = params.add("b1", Matrix::randn(1, 4, 0.4, &mut rng));
        let w2 = params.add("w2", Matrix::randn(4, 1, 0.4, &mut rng));
        let emb = params.add("emb", Matrix::randn(5, 3, 0.4, &mut rng));

        let rows = vec![0usize, 2, 4, 1];
        let col_mask = Matrix::col_vector(&[1.0, 0.5, 1.0, 0.0]);
        let pos_w = vec![1.0, 2.0, 0.0, 1.0];
        let neg_w = vec![0.5, -0.5, 1.0, 0.0];

        let check = check_params(&mut params, 5e-3, |tape, params| {
            let x = tape.gather(params, emb, &rows); // 4×3
            let w1v = tape.param(params, w1);
            let b1v = tape.param(params, b1);
            let h = tape.matmul(x, w1v);
            let h = tape.add_row(h, b1v);
            let h = tape.tanh(h);
            let mask = tape.input(col_mask.clone());
            let h = tape.mul_col(h, mask);
            let s = tape.sigmoid(h);
            let t = tape.relu(h);
            let u = tape.mul(s, t);
            let cat = tape.concat_cols(&[u, h]); // 4×8
            let left = tape.slice_cols(cat, 0, 4); // back to 4×4
            let w2v = tape.param(params, w2);
            let z = tape.matmul(left, w2v); // 4×1
            let z = tape.affine(z, 1.3, -0.1);
            tape.weighted_bce(z, &pos_w, &neg_w, 4.0, false)
        });
        assert!(
            check.passes(3e-2),
            "max_rel_err={} over {} entries",
            check.max_rel_err,
            check.checked
        );
        assert!(check.checked > 0);
    }

    #[test]
    fn softmax_and_batched_matmul_gradcheck() {
        let mut rng = Rng::seed_from_u64(99);
        let mut params = Params::new();
        let batch = 2;
        let fields = 3;
        let d = 2;
        let q = params.add("q", Matrix::randn(batch * fields, d, 0.5, &mut rng));
        let k = params.add("k", Matrix::randn(batch * fields, d, 0.5, &mut rng));
        let v = params.add("v", Matrix::randn(batch * fields, d, 0.5, &mut rng));

        let check = check_params(&mut params, 5e-3, |tape, params| {
            let qv = tape.param(params, q);
            let kv = tape.param(params, k);
            let vv = tape.param(params, v);
            let scores = tape.batched_matmul(qv, kv, batch, true); // (B·F)×F
            let scores = tape.scale(scores, 1.0 / (d as f32).sqrt());
            let attn = tape.softmax_rows(scores);
            let out = tape.batched_matmul(attn, vv, batch, false); // (B·F)×d
            let sq = tape.square(out);
            tape.mean_all(sq)
        });
        assert!(
            check.passes(3e-2),
            "max_rel_err={} over {}",
            check.max_rel_err,
            check.checked
        );
    }

    #[test]
    fn sub_reshape_rowsum_gradcheck() {
        let mut rng = Rng::seed_from_u64(7);
        let mut params = Params::new();
        let a = params.add("a", Matrix::randn(2, 6, 0.5, &mut rng));
        let b = params.add("b", Matrix::randn(4, 3, 0.5, &mut rng));

        let check = check_params(&mut params, 5e-3, |tape, params| {
            let av = tape.param(params, a);
            let bv = tape.param(params, b);
            let ar = tape.reshape(av, 4, 3); // row-major reinterpretation
            let d = tape.sub(ar, bv);
            let d2 = tape.square(d);
            let rs = tape.row_sum(d2); // 4×1
            let sm = tape.sigmoid(rs);
            tape.sum_all(sm)
        });
        // Tiny gradients through a saturating sigmoid leave little signal
        // for f32 central differences; tolerance is looser here.
        assert!(
            check.passes(8e-2),
            "max_rel_err={} over {}",
            check.max_rel_err,
            check.checked
        );
    }

    #[test]
    fn clamped_bce_gradcheck_away_from_kink() {
        // With clamping active, elements far from the kink must still have
        // exact gradients (clamped → 0, unclamped → usual formula).
        let mut rng = Rng::seed_from_u64(42);
        let mut params = Params::new();
        let w = params.add("w", Matrix::randn(4, 1, 1.0, &mut rng));
        let pos_w = vec![1.8, 0.0, 1.0, 2.5];
        let neg_w = vec![-0.8, 1.0, 0.0, -1.5]; // some strongly negative rows
        let x = Matrix::from_vec(
            4,
            4,
            (0..16).map(|i| ((i * 7 % 5) as f32 - 2.0) * 0.6).collect(),
        );

        let check = check_params(&mut params, 2e-3, |tape, params| {
            let xv = tape.input(x.clone());
            let wv = tape.param(params, w);
            let z = tape.matmul(xv, wv);
            tape.weighted_bce(z, &pos_w, &neg_w, 4.0, true)
        });
        assert!(
            check.passes(3e-2),
            "max_rel_err={} over {}",
            check.max_rel_err,
            check.checked
        );
    }
}
