//! Corruption fuzzing for the `.uaem` artifact decoder: truncations,
//! bit flips, hostile length fields, and wrong-variant bytes must all
//! come back as typed errors — never a panic, never an unbounded
//! allocation. This is the same decode path the daemon's hot-swap takes,
//! so these tests are the ground truth behind "a corrupt swap rolls back
//! instead of crashing".

use std::panic::{catch_unwind, AssertUnwindSafe};

use uae_core::UaeConfig;
use uae_data::{generate, SimConfig};
use uae_runtime::UaeError;
use uae_serve::{FrozenArtifact, FrozenModel};

fn tiny_frozen() -> FrozenModel {
    let ds = generate(&SimConfig::tiny(), 41);
    let cfg = UaeConfig {
        gru_hidden: 4,
        mlp_hidden: vec![4],
        ..UaeConfig::default()
    };
    let uae = uae_core::Uae::new(&ds.schema, cfg);
    FrozenModel::from_uae(&uae, &ds.schema, 15.0)
}

fn tiny_artifact() -> Vec<u8> {
    tiny_frozen().encode()
}

/// Decode must return `Result`, not unwind, for arbitrary input.
fn decode_never_panics(bytes: &[u8]) -> Option<Result<FrozenModel, UaeError>> {
    catch_unwind(AssertUnwindSafe(|| FrozenModel::decode(bytes))).ok()
}

#[test]
fn every_truncation_is_a_typed_error() {
    let bytes = tiny_artifact();
    assert!(FrozenModel::decode(&bytes).is_ok(), "baseline must decode");
    for cut in 0..bytes.len() {
        match decode_never_panics(&bytes[..cut]) {
            Some(Err(UaeError::Checkpoint(_))) => {}
            Some(Err(other)) => panic!("cut={cut}: unexpected error kind {other:?}"),
            Some(Ok(_)) => panic!("cut={cut}: truncated artifact decoded successfully"),
            None => panic!("cut={cut}: decode panicked"),
        }
    }
}

#[test]
fn single_byte_flips_never_panic_decode_or_build() {
    let bytes = tiny_artifact();
    // Dense sweep over the header/schema region, strided sweep over the
    // parameter arenas (any arena byte is legal f32 payload, so most flips
    // there still decode — the contract is no panic, in decode OR build).
    let positions: Vec<usize> = (0..64.min(bytes.len()))
        .chain((64..bytes.len()).step_by(37))
        .collect();
    for pos in positions {
        let mut mutated = bytes.clone();
        mutated[pos] ^= 0xFF;
        match decode_never_panics(&mutated) {
            Some(Err(UaeError::Checkpoint(_))) => {}
            Some(Err(other)) => panic!("pos={pos}: unexpected error kind {other:?}"),
            Some(Ok(frozen)) => {
                // The container survived; rebuilding must stay typed too.
                let built = catch_unwind(AssertUnwindSafe(|| frozen.build()));
                assert!(built.is_ok(), "pos={pos}: build() panicked");
            }
            None => panic!("pos={pos}: decode panicked"),
        }
    }
}

#[test]
fn oversized_length_fields_fail_fast_without_allocating() {
    let bytes = tiny_artifact();
    // The container opens with `put_bytes(MAGIC)`: a u64 LE length prefix.
    // Claim the magic string is enormous; the reader must refuse (bounds
    // check against remaining bytes), not try to allocate or read past the
    // end.
    for hostile in [u64::MAX, u64::MAX / 2, (bytes.len() as u64) + 1] {
        let mut mutated = bytes.clone();
        mutated[..8].copy_from_slice(&hostile.to_le_bytes());
        match decode_never_panics(&mutated) {
            Some(Err(UaeError::Checkpoint(_))) => {}
            other => panic!("hostile len {hostile}: expected typed error, got {other:?}"),
        }
    }
    // Same attack on an interior length prefix (the params_g arena): find
    // it by decoding the valid artifact and corrupting past the header.
    let mut mutated = bytes.clone();
    let tail = mutated.len() - 12;
    mutated[tail..tail + 8].copy_from_slice(&u64::MAX.to_le_bytes());
    match decode_never_panics(&mutated) {
        Some(Err(UaeError::Checkpoint(_))) => {}
        Some(Ok(_)) => {} // landed inside a blob that still parses — fine
        other => panic!("interior hostile len: {other:?}"),
    }
}

#[test]
fn wrong_variant_bytes_are_rejected_with_guidance() {
    let bytes = tiny_artifact();
    // Layout: u64 len + 4 magic bytes + u32 version + variant byte.
    let variant_pos = 8 + 4 + 4;
    assert!(bytes[variant_pos] <= 1, "layout drifted; update this test");
    // Variant 2 is a downstream-recommender artifact: FrozenModel must
    // refuse and point at FrozenArtifact.
    let mut rec = bytes.clone();
    rec[variant_pos] = 2;
    match FrozenModel::decode(&rec) {
        Err(UaeError::Checkpoint(e)) => {
            assert!(e.to_string().contains("FrozenArtifact"), "{e}")
        }
        other => panic!("{other:?}"),
    }
    // An unknown variant is flat-out corrupt.
    let mut junk = bytes.clone();
    junk[variant_pos] = 99;
    match FrozenModel::decode(&junk) {
        Err(UaeError::Checkpoint(_)) => {}
        other => panic!("{other:?}"),
    }
    // The sniffing decoder rejects it the same way.
    assert!(FrozenArtifact::decode(&junk).is_err());
}

#[test]
fn garbage_and_empty_inputs_are_typed_errors() {
    for bytes in [
        vec![],
        vec![0u8],
        vec![0xFF; 16],
        b"not a uaem file at all".to_vec(),
        vec![0u8; 4096],
    ] {
        match decode_never_panics(&bytes) {
            Some(Err(UaeError::Checkpoint(_))) => {}
            other => panic!("{} bytes of garbage: {other:?}", bytes.len()),
        }
    }
}

/// The legacy v2 layout (opaque embedded blobs) keeps its full corruption
/// guarantees now that `encode` emits v3: every truncation of a v2 file is
/// still a typed error, and the intact file still decodes.
#[test]
fn v2_truncations_stay_typed_errors() {
    let bytes = tiny_frozen().encode_v2();
    assert!(
        FrozenModel::decode(&bytes).is_ok(),
        "v2 baseline must decode"
    );
    for cut in 0..bytes.len() {
        match decode_never_panics(&bytes[..cut]) {
            Some(Err(UaeError::Checkpoint(_))) => {}
            Some(Err(other)) => panic!("cut={cut}: unexpected error kind {other:?}"),
            Some(Ok(_)) => panic!("cut={cut}: truncated v2 artifact decoded"),
            None => panic!("cut={cut}: decode panicked"),
        }
    }
}

/// The memory-mapped open path must give the same typed-error guarantees as
/// the byte-slice decoder: truncated files, bit flips, and hostile header
/// fields come back as `Err`, never a panic and never a wild pointer read.
#[test]
fn open_survives_truncations_and_flips() {
    let dir = std::env::temp_dir().join(format!("uaem_fuzz_open_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let bytes = tiny_artifact();
    let path = dir.join("fuzz.uaem");

    std::fs::write(&path, &bytes).unwrap();
    let baseline = FrozenModel::open(&path).expect("baseline must open");
    assert!(
        catch_unwind(AssertUnwindSafe(|| baseline.build())).is_ok(),
        "baseline build panicked"
    );

    // Truncations (strided; the dense sweep is covered on the slice path).
    for cut in (0..bytes.len()).step_by(23).chain([bytes.len() - 1]) {
        std::fs::write(&path, &bytes[..cut]).unwrap();
        match catch_unwind(AssertUnwindSafe(|| FrozenModel::open(&path))).ok() {
            Some(Err(UaeError::Checkpoint(_))) => {}
            Some(Err(other)) => panic!("cut={cut}: unexpected error kind {other:?}"),
            Some(Ok(_)) => panic!("cut={cut}: truncated file opened"),
            None => panic!("cut={cut}: open panicked"),
        }
    }

    // Bit flips: whatever opens must also build (or error) without panics —
    // a flipped arena offset that slipped validation would fault here.
    for pos in (0..bytes.len()).step_by(41) {
        let mut mutated = bytes.clone();
        mutated[pos] ^= 0xFF;
        std::fs::write(&path, &mutated).unwrap();
        match catch_unwind(AssertUnwindSafe(|| FrozenModel::open(&path))).ok() {
            Some(Err(UaeError::Checkpoint(_))) => {}
            Some(Err(other)) => panic!("pos={pos}: unexpected error kind {other:?}"),
            Some(Ok(frozen)) => {
                let built = catch_unwind(AssertUnwindSafe(|| frozen.build()));
                assert!(built.is_ok(), "pos={pos}: build() panicked");
            }
            None => panic!("pos={pos}: open panicked"),
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn read_from_missing_or_corrupt_files_is_typed() {
    let dir = std::env::temp_dir().join("uae_serve_uaem_fuzz");
    std::fs::create_dir_all(&dir).unwrap();
    // Missing file.
    assert!(FrozenModel::read_from(&dir.join("does_not_exist.uaem")).is_err());
    // Corrupt file on disk (the exact shape a failed hot-swap sees).
    let path = dir.join("corrupt.uaem");
    let mut bytes = tiny_artifact();
    let mid = bytes.len() / 2;
    bytes.truncate(mid);
    std::fs::write(&path, &bytes).unwrap();
    match FrozenModel::read_from(&path) {
        Err(UaeError::Checkpoint(_)) => {}
        other => panic!("{other:?}"),
    }
    std::fs::remove_file(&path).ok();
}
