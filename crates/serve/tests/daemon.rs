//! In-process integration tests for the serving daemon: a real `Daemon`
//! bound on an ephemeral port, exercised over TCP by [`ServeClient`].
//!
//! Each test stands up its own daemon (port 0, so tests parallelize) and
//! tears it down with a `Shutdown` request so the `run()` thread joins
//! cleanly. Fault injection uses directly constructed [`FaultPlan`]s, not
//! env vars, so tests cannot leak chaos into each other.

use std::net::SocketAddr;
use std::thread::JoinHandle;
use std::time::Duration;

use uae_core::{Uae, UaeConfig};
use uae_data::{generate, Dataset, SimConfig};
use uae_runtime::UaeError;
use uae_serve::{
    Daemon, DaemonConfig, FaultPlan, FrozenModel, Scorer, ScorerConfig, ServeClient, WireSession,
};

/// A tiny dataset plus an artifact encoding of a model trained-shaped for
/// its schema. Deterministic, so every test sees the same bytes.
fn tiny_fixture() -> (Dataset, Vec<u8>) {
    let ds = generate(&SimConfig::tiny(), 41);
    let cfg = UaeConfig {
        gru_hidden: 4,
        mlp_hidden: vec![4],
        ..UaeConfig::default()
    };
    let uae = Uae::new(&ds.schema, cfg);
    let bytes = FrozenModel::from_uae(&uae, &ds.schema, 15.0).encode();
    (ds, bytes)
}

/// Binds a daemon on an ephemeral port and runs it on a background thread.
/// Returns the resolved address and the `run()` handle to join after
/// shutdown.
fn start_daemon(
    bytes: &[u8],
    cfg: DaemonConfig,
    fault: FaultPlan,
) -> (SocketAddr, JoinHandle<Result<(), UaeError>>) {
    let frozen = FrozenModel::decode(bytes).expect("fixture artifact must decode");
    let daemon = Daemon::bind(frozen, cfg, fault).expect("bind on port 0");
    let addr = daemon.local_addr();
    let handle = std::thread::spawn(move || daemon.run());
    (addr, handle)
}

fn connect(addr: SocketAddr) -> ServeClient {
    ServeClient::connect_timeout(&addr.to_string(), Duration::from_secs(5))
        .expect("connect to in-process daemon")
}

fn wire_sessions(ds: &Dataset, indices: &[usize]) -> Vec<WireSession> {
    indices
        .iter()
        .map(|&i| WireSession::from_dataset(ds, i))
        .collect()
}

/// Indices of a few non-empty sessions (zero-event sessions are exercised
/// separately).
fn nonempty(ds: &Dataset, take: usize) -> Vec<usize> {
    (0..ds.sessions.len())
        .filter(|&i| !ds.sessions[i].events.is_empty())
        .take(take)
        .collect()
}

fn shutdown(addr: SocketAddr, handle: JoinHandle<Result<(), UaeError>>) {
    connect(addr)
        .shutdown()
        .expect("daemon acknowledges shutdown");
    handle
        .join()
        .expect("run() thread must not panic")
        .expect("run() returns Ok after drain");
}

#[test]
fn scores_over_the_wire_match_local_scoring_bit_for_bit() {
    let (ds, bytes) = tiny_fixture();
    let (addr, handle) = start_daemon(&bytes, DaemonConfig::default(), FaultPlan::none());

    let indices = nonempty(&ds, 5);
    let mut client = connect(addr);
    client.ping().expect("ping answers pong");
    let (generation, scored) = client
        .score(wire_sessions(&ds, &indices), 0)
        .expect("score succeeds");
    assert_eq!(generation, 1, "fresh daemon serves generation 1");
    assert_eq!(scored.len(), indices.len());

    // The reference: the same artifact scored locally, outside the daemon.
    let local = Scorer::with_config(
        FrozenModel::decode(&bytes).unwrap(),
        ScorerConfig::default(),
    )
    .unwrap();
    let out = local.score(&ds, &indices);
    let mut off = 0usize;
    for (k, &i) in indices.iter().enumerate() {
        let n = ds.sessions[i].events.len();
        assert_eq!(scored[k].attention, out.attention[off..off + n].to_vec());
        assert_eq!(scored[k].propensity, out.propensity[off..off + n].to_vec());
        assert_eq!(scored[k].weights, out.weights[off..off + n].to_vec());
        off += n;
    }

    let stats = client.stats().expect("stats snapshot");
    assert!(stats.ready);
    assert_eq!(stats.generation, 1);
    assert!(stats.requests >= 1);
    assert!(stats.events >= off as u64);
    shutdown(addr, handle);
}

#[test]
fn empty_and_zero_event_requests_round_trip() {
    let (ds, bytes) = tiny_fixture();
    let (addr, handle) = start_daemon(&bytes, DaemonConfig::default(), FaultPlan::none());
    let mut client = connect(addr);

    // An empty session list is a legal no-op request.
    let (_, scored) = client.score(Vec::new(), 0).expect("empty request is ok");
    assert!(scored.is_empty());

    // A zero-event session contributes an empty block without disturbing
    // its non-empty neighbors.
    let indices = nonempty(&ds, 2);
    let mut sessions = wire_sessions(&ds, &indices);
    sessions.insert(1, WireSession { events: Vec::new() });
    let (_, scored) = client.score(sessions, 0).expect("mixed request is ok");
    assert_eq!(scored.len(), 3);
    assert!(scored[1].attention.is_empty());
    assert_eq!(
        scored[0].attention.len(),
        ds.sessions[indices[0]].events.len()
    );
    assert_eq!(
        scored[2].attention.len(),
        ds.sessions[indices[1]].events.len()
    );
    shutdown(addr, handle);
}

#[test]
fn schema_violations_are_typed_protocol_errors_and_the_connection_survives() {
    let (ds, bytes) = tiny_fixture();
    let cfg = DaemonConfig {
        max_len: Some(4),
        ..DaemonConfig::default()
    };
    let (addr, handle) = start_daemon(&bytes, cfg, FaultPlan::none());
    let mut client = connect(addr);

    // Wrong categorical field count (on a session truncated under the
    // length bound, so the field check is what fires).
    let mut sessions = wire_sessions(&ds, &nonempty(&ds, 1));
    sessions[0].events.truncate(2);
    sessions[0].events[0].cat.push(0);
    match client.score(sessions, 0) {
        Err(UaeError::Protocol { detail }) => {
            assert!(detail.contains("categorical"), "got: {detail}");
        }
        other => panic!("expected Protocol error, got {other:?}"),
    }

    // Overlong session (names the knob so operators know which to raise).
    let long = (0..ds.sessions.len())
        .find(|&i| ds.sessions[i].events.len() > 4)
        .expect("fixture has a session longer than 4 events");
    match client.score(wire_sessions(&ds, &[long]), 0) {
        Err(UaeError::Protocol { detail }) => {
            assert!(detail.contains("UAE_SERVE_MAX_LEN"), "got: {detail}");
        }
        other => panic!("expected Protocol error, got {other:?}"),
    }

    // The frame boundary held both times: the same connection still works
    // (with a request that fits the length bound).
    let mut ok = wire_sessions(&ds, &nonempty(&ds, 1));
    ok[0].events.truncate(4);
    client
        .score(ok, 0)
        .expect("connection survives typed protocol errors");
    shutdown(addr, handle);
}

#[test]
fn hot_swap_drains_and_scores_stay_bit_identical() {
    let (ds, bytes) = tiny_fixture();
    let dir = std::env::temp_dir().join(format!("uae_swap_test_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("next.uaem");
    // The swap target is the *same* model: generation flips 1 → 2 and
    // scores must not move by a single bit.
    std::fs::write(&path, &bytes).unwrap();

    let (addr, handle) = start_daemon(&bytes, DaemonConfig::default(), FaultPlan::none());
    let mut client = connect(addr);
    let indices = nonempty(&ds, 4);
    let (g1, before) = client.score(wire_sessions(&ds, &indices), 0).unwrap();
    assert_eq!(g1, 1);

    let next = client.swap(path.to_str().unwrap()).expect("swap succeeds");
    assert_eq!(next, 2);

    let (g2, after) = client.score(wire_sessions(&ds, &indices), 0).unwrap();
    assert_eq!(g2, 2, "post-swap scores carry the new generation tag");
    for (b, a) in before.iter().zip(&after) {
        assert_eq!(b.attention, a.attention, "attention moved across swap");
        assert_eq!(b.propensity, a.propensity, "propensity moved across swap");
        assert_eq!(b.weights, a.weights, "weights moved across swap");
    }

    let stats = client.stats().unwrap();
    assert_eq!(stats.generation, 2);
    assert_eq!(stats.swaps, 1);
    assert_eq!(stats.swap_rollbacks, 0);
    shutdown(addr, handle);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_swap_rolls_back_to_last_good() {
    let (ds, bytes) = tiny_fixture();
    let dir = std::env::temp_dir().join(format!("uae_rollback_test_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    let truncated = dir.join("truncated.uaem");
    std::fs::write(&truncated, &bytes[..bytes.len() / 2]).unwrap();
    let missing = dir.join("does_not_exist.uaem");

    let (addr, handle) = start_daemon(&bytes, DaemonConfig::default(), FaultPlan::none());
    let mut client = connect(addr);

    for bad in [truncated.to_str().unwrap(), missing.to_str().unwrap()] {
        match client.swap(bad) {
            Err(UaeError::SwapRejected { .. }) => {}
            other => panic!("expected SwapRejected for {bad}, got {other:?}"),
        }
    }

    // Last-good generation still serves.
    let indices = nonempty(&ds, 2);
    let (generation, _) = client.score(wire_sessions(&ds, &indices), 0).unwrap();
    assert_eq!(generation, 1, "rollback keeps generation 1 active");
    let stats = client.stats().unwrap();
    assert_eq!(stats.swap_rollbacks, 2);
    assert_eq!(stats.swaps, 0);
    shutdown(addr, handle);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn overload_sheds_with_typed_backpressure() {
    let (ds, bytes) = tiny_fixture();
    let cfg = DaemonConfig {
        workers: 1,
        queue_capacity: 1,
        batch: 1,
        ..DaemonConfig::default()
    };
    // The single worker stalls 400 ms per batch, so a burst of concurrent
    // one-session requests must overflow the one-session queue.
    let fault = FaultPlan::with(400, 0);
    let (addr, handle) = start_daemon(&bytes, cfg, fault);

    let indices = nonempty(&ds, 1);
    let burst = 6;
    let outcomes: Vec<Result<(), UaeError>> = std::thread::scope(|scope| {
        let mut joins = Vec::new();
        for _ in 0..burst {
            let sessions = wire_sessions(&ds, &indices);
            joins.push(scope.spawn(move || {
                let mut c = connect(addr);
                c.score(sessions, 0).map(|_| ())
            }));
        }
        joins.into_iter().map(|j| j.join().unwrap()).collect()
    });

    let ok = outcomes.iter().filter(|r| r.is_ok()).count();
    let shed = outcomes
        .iter()
        .filter(|r| matches!(r, Err(UaeError::Overload { .. })))
        .count();
    assert_eq!(
        ok + shed,
        burst,
        "every request was answered, never dropped"
    );
    assert!(ok >= 1, "the worker still makes progress under overload");
    assert!(shed >= 1, "a 6-deep burst against a 1-deep queue must shed");
    let mut client = connect(addr);
    let stats = client.stats().unwrap();
    assert_eq!(stats.shed, shed as u64);
    shutdown(addr, handle);
}

#[test]
fn blown_deadlines_answer_with_typed_deadline_exceeded() {
    let (ds, bytes) = tiny_fixture();
    let fault = FaultPlan::with(120, 0);
    let (addr, handle) = start_daemon(&bytes, DaemonConfig::default(), fault);
    let mut client = connect(addr);

    let indices = nonempty(&ds, 1);
    match client.score(wire_sessions(&ds, &indices), 30) {
        Err(UaeError::DeadlineExceeded {
            waited_ms,
            budget_ms,
        }) => {
            assert_eq!(budget_ms, 30);
            assert!(waited_ms >= 30, "waited {waited_ms} ms < 30 ms budget");
        }
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
    // A request with budget to spare still succeeds on the same daemon.
    client
        .score(wire_sessions(&ds, &indices), 5_000)
        .expect("generous budget survives the slow scorer");
    let stats = client.stats().unwrap();
    assert!(stats.deadline_miss >= 1);
    shutdown(addr, handle);
}

#[test]
fn worker_panics_are_isolated_and_the_daemon_keeps_serving() {
    let (ds, bytes) = tiny_fixture();
    let cfg = DaemonConfig {
        workers: 1,
        ..DaemonConfig::default()
    };
    // Every second micro-batch panics inside the worker.
    let fault = FaultPlan::with(0, 2);
    let (addr, handle) = start_daemon(&bytes, cfg, fault);
    let mut client = connect(addr);
    let indices = nonempty(&ds, 1);

    let mut panics = 0usize;
    let mut oks = 0usize;
    for _ in 0..4 {
        match client.score(wire_sessions(&ds, &indices), 0) {
            Ok(_) => oks += 1,
            Err(UaeError::WorkerPanic { detail }) => {
                assert!(detail.contains("injected fault"), "got: {detail}");
                panics += 1;
            }
            other => panic!("expected Ok or WorkerPanic, got {other:?}"),
        }
    }
    assert_eq!(oks, 2, "odd batches score normally");
    assert_eq!(panics, 2, "even batches answer typed WorkerPanic");

    // The daemon itself never died: liveness and bookkeeping both hold.
    client.ping().expect("daemon answers after worker panics");
    let stats = client.stats().unwrap();
    assert_eq!(stats.worker_restarts, 2);
    shutdown(addr, handle);
}

#[test]
fn shutdown_answers_queued_work_before_exiting() {
    let (ds, bytes) = tiny_fixture();
    let cfg = DaemonConfig {
        workers: 1,
        batch: 1,
        ..DaemonConfig::default()
    };
    let fault = FaultPlan::with(150, 0);
    let (addr, handle) = start_daemon(&bytes, cfg, fault);
    let indices = nonempty(&ds, 1);

    // Queue two slow requests, then shut down while they are in flight;
    // both must still be answered (drain before exit).
    let results = std::thread::scope(|scope| {
        let mut joins = Vec::new();
        for _ in 0..2 {
            let sessions = wire_sessions(&ds, &indices);
            joins.push(scope.spawn(move || {
                let mut c = connect(addr);
                c.score(sessions, 0).map(|_| ())
            }));
        }
        std::thread::sleep(Duration::from_millis(50));
        connect(addr).shutdown().expect("shutdown acknowledged");
        joins
            .into_iter()
            .map(|j| j.join().unwrap())
            .collect::<Vec<_>>()
    });
    for r in &results {
        assert!(r.is_ok(), "queued request dropped at shutdown: {r:?}");
    }
    handle.join().unwrap().expect("run() drains and returns");

    // The socket is really gone.
    assert!(
        ServeClient::connect_timeout(&addr.to_string(), Duration::from_millis(200)).is_err(),
        "daemon still listening after shutdown"
    );
}

#[test]
fn stats_exposes_quantile_histograms_and_a_balanced_trace_ledger() {
    let (ds, bytes) = tiny_fixture();
    let (addr, handle) = start_daemon(&bytes, DaemonConfig::default(), FaultPlan::none());
    let mut client = connect(addr);
    let indices = nonempty(&ds, 3);

    let mut trace_ids = std::collections::BTreeSet::new();
    for _ in 0..5 {
        let (_, trace_id, _) = client
            .score_traced(wire_sessions(&ds, &indices), 0)
            .expect("score succeeds");
        assert_ne!(trace_id, 0, "tracing is on by default");
        trace_ids.insert(trace_id);
    }
    assert_eq!(trace_ids.len(), 5, "every request gets a distinct trace id");

    let stats = client.stats().expect("stats snapshot");
    assert!(stats.uptime_ms > 0, "uptime is monotonic since start");
    assert!(stats.snapshot_unix_ms > 0, "wall clock is stamped");
    assert_eq!(stats.traces_started, 5);
    assert_eq!(
        stats.traces_completed, 5,
        "every minted trace was closed with an outcome"
    );
    let request = stats
        .hists
        .iter()
        .find(|h| h.name == "request_us")
        .expect("request latency histogram is exported");
    assert_eq!(request.count, 5);
    assert!(request.p50 <= request.p99 && request.p99 <= request.max);
    assert!(request.max > 0, "a real request takes nonzero microseconds");
    let bucket_total: u64 = request.buckets.iter().map(|&(_, c)| c).sum();
    assert_eq!(bucket_total, request.count, "bucket dump accounts for all");
    for name in [
        "queue_wait_us",
        "score_us",
        "reply_write_us",
        "batch_sessions",
    ] {
        assert!(
            stats.hists.iter().any(|h| h.name == name && h.count == 5),
            "{name} histogram missing or undercounted: {:?}",
            stats
                .hists
                .iter()
                .map(|h| (&h.name, h.count))
                .collect::<Vec<_>>()
        );
    }
    shutdown(addr, handle);
}

#[test]
fn scores_are_bit_identical_with_tracing_on_and_off() {
    let (ds, bytes) = tiny_fixture();
    let traced = start_daemon(&bytes, DaemonConfig::default(), FaultPlan::none());
    let untraced_cfg = DaemonConfig {
        trace: false,
        ..DaemonConfig::default()
    };
    let untraced = start_daemon(&bytes, untraced_cfg, FaultPlan::none());

    let indices = nonempty(&ds, 4);
    let mut on = connect(traced.0);
    let mut off = connect(untraced.0);
    let (_, on_id, a) = on
        .score_traced(wire_sessions(&ds, &indices), 0)
        .expect("traced daemon scores");
    let (_, off_id, b) = off
        .score_traced(wire_sessions(&ds, &indices), 0)
        .expect("untraced daemon scores");
    assert_ne!(on_id, 0);
    assert_eq!(off_id, 0, "UAE_TRACE=0 mints no trace ids");
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.attention, y.attention, "attention moved under tracing");
        assert_eq!(x.propensity, y.propensity, "propensity moved under tracing");
        assert_eq!(x.weights, y.weights, "weights moved under tracing");
    }
    let stats = off.stats().unwrap();
    assert_eq!(stats.traces_started, 0);
    assert_eq!(stats.traces_completed, 0);
    shutdown(traced.0, traced.1);
    shutdown(untraced.0, untraced.1);
}

/// Reads the flight-recorder dumps under `dir` back through the JSONL
/// parser and returns the decoded trace summaries of each file.
fn read_dumps(dir: &std::path::Path) -> Vec<Vec<uae_obs::TraceSummary>> {
    let mut files: Vec<_> = std::fs::read_dir(dir)
        .expect("flight dir exists")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("uae-flight-") && n.ends_with(".jsonl"))
        })
        .collect();
    files.sort();
    files
        .iter()
        .map(|path| {
            let text = std::fs::read_to_string(path).expect("dump readable");
            let records = uae_obs::parse_jsonl(&text).expect("dump is well-formed JSONL");
            assert!(
                matches!(records[0].event, uae_obs::Event::RunManifest(_)),
                "dump starts with a manifest"
            );
            // The dump is also renderable by `uae summarize`.
            let report = uae_obs::summarize(&records).expect("summarize renders the dump");
            assert!(report.contains("traces:"), "summary lacks a trace section");
            records
                .into_iter()
                .filter_map(|r| match r.event {
                    uae_obs::Event::Trace(t) => Some(t),
                    _ => None,
                })
                .collect()
        })
        .collect()
}

#[test]
fn worker_panic_dumps_the_flight_recorder_with_preceding_traces() {
    let (ds, bytes) = tiny_fixture();
    let dir = std::env::temp_dir().join(format!("uae_flight_panic_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let cfg = DaemonConfig {
        workers: 1,
        flight_dir: dir.clone(),
        ..DaemonConfig::default()
    };
    // Every second micro-batch panics; the dump taken at the panic must
    // contain the trace of the successful request that preceded it.
    let fault = FaultPlan::with(0, 2);
    let (addr, handle) = start_daemon(&bytes, cfg, fault);
    let mut client = connect(addr);
    let indices = nonempty(&ds, 2);

    client
        .score(wire_sessions(&ds, &indices), 0)
        .expect("first batch scores");
    let second = client.score(wire_sessions(&ds, &indices), 0);
    assert!(
        matches!(second, Err(UaeError::WorkerPanic { .. })),
        "second batch panics: {second:?}"
    );

    let dumps = read_dumps(&dir);
    assert_eq!(dumps.len(), 1, "one panic, one dump");
    let traces = &dumps[0];
    assert!(
        traces
            .iter()
            .any(|t| t.outcome == "ok" && t.stages.score_us > 0),
        "dump holds the preceding ok trace with stage timings: {traces:?}"
    );
    shutdown(addr, handle);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn swap_rollback_and_serve_ctl_dump_both_write_flight_dumps() {
    let (ds, bytes) = tiny_fixture();
    let dir = std::env::temp_dir().join(format!("uae_flight_swap_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let bad = dir.join("corrupt.uaem");
    std::fs::write(&bad, &bytes[..bytes.len() / 3]).unwrap();
    let cfg = DaemonConfig {
        flight_dir: dir.clone(),
        ..DaemonConfig::default()
    };
    let (addr, handle) = start_daemon(&bytes, cfg, FaultPlan::none());
    let mut client = connect(addr);
    let indices = nonempty(&ds, 2);
    client
        .score(wire_sessions(&ds, &indices), 0)
        .expect("warm-up request");

    // A rejected swap rolls back AND leaves a flight dump behind.
    assert!(matches!(
        client.swap(bad.to_str().unwrap()),
        Err(UaeError::SwapRejected { .. })
    ));
    assert_eq!(read_dumps(&dir).len(), 1, "rollback wrote a dump");

    // An operator dump via the wire writes another and reports its path.
    let (path, traces) = client.dump().expect("serve-ctl dump");
    assert!(traces >= 1, "the warm-up trace is in the ring");
    assert!(
        std::path::Path::new(&path).is_file(),
        "reported path exists"
    );
    assert_eq!(read_dumps(&dir).len(), 2);
    shutdown(addr, handle);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Re-run the swap determinism claim under whatever `UAE_NUM_THREADS` the
/// harness sets (ci runs the suite at 1 and 4): coalesced scoring through a
/// generation swap must be bit-identical to isolated pre-swap scoring.
#[test]
fn swap_determinism_holds_under_concurrent_scoring() {
    let (ds, bytes) = tiny_fixture();
    let dir = std::env::temp_dir().join(format!("uae_swap_conc_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("same.uaem");
    std::fs::write(&path, &bytes).unwrap();

    let cfg = DaemonConfig {
        workers: 2,
        ..DaemonConfig::default()
    };
    let (addr, handle) = start_daemon(&bytes, cfg, FaultPlan::none());
    let indices = nonempty(&ds, 3);
    let baseline = {
        let mut c = connect(addr);
        c.score(wire_sessions(&ds, &indices), 0).unwrap().1
    };

    // Score continuously from two clients while a third swaps generations.
    let all_match = std::thread::scope(|scope| {
        let mut scorers = Vec::new();
        for _ in 0..2 {
            let sessions = wire_sessions(&ds, &indices);
            let baseline = &baseline;
            scorers.push(scope.spawn(move || {
                let mut c = connect(addr);
                for _ in 0..20 {
                    let (_, scored) = c.score(sessions.clone(), 0).expect("score during swaps");
                    for (s, b) in scored.iter().zip(baseline) {
                        if s.attention != b.attention
                            || s.propensity != b.propensity
                            || s.weights != b.weights
                        {
                            return false;
                        }
                    }
                }
                true
            }));
        }
        let swapper = scope.spawn(|| {
            let mut c = connect(addr);
            for _ in 0..3 {
                c.swap(path.to_str().unwrap()).expect("swap during load");
                std::thread::sleep(Duration::from_millis(10));
            }
        });
        let ok = scorers.into_iter().all(|j| j.join().unwrap());
        swapper.join().unwrap();
        ok
    });
    assert!(all_match, "a score moved across a generation swap");

    let mut client = connect(addr);
    let stats = client.stats().unwrap();
    assert_eq!(stats.generation, 4, "three swaps past generation 1");
    shutdown(addr, handle);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Shed and protocol-error traces never reach a worker, so the stage
/// histograms exclude them; `hist_excluded` surfaces the exclusion so
/// `request_us.count == queue_wait_us.count + hist_excluded` reconciles.
#[test]
fn stage_histograms_exclude_shed_traffic_and_the_ledger_reconciles() {
    let (ds, bytes) = tiny_fixture();
    let (addr, handle) = start_daemon(&bytes, DaemonConfig::default(), FaultPlan::none());
    let mut client = connect(addr);

    let indices = nonempty(&ds, 2);
    client
        .score(wire_sessions(&ds, &indices), 0)
        .expect("clean request scores");

    // A schema violation closes its trace with a protocol-error outcome —
    // the request histogram records it, the stage histograms must not.
    let mut bad = wire_sessions(&ds, &indices);
    bad[0].events[0].cat.push(0);
    assert!(matches!(
        client.score(bad, 0),
        Err(UaeError::Protocol { .. })
    ));

    let stats = client.stats().unwrap();
    assert!(
        stats.hist_excluded >= 1,
        "the protocol-error trace must be counted as excluded"
    );
    let count = |name: &str| {
        stats
            .hists
            .iter()
            .find(|h| h.name == name)
            .map(|h| h.count)
            .unwrap_or(0)
    };
    assert_eq!(
        count("request_us"),
        count("queue_wait_us") + stats.hist_excluded,
        "request_us must equal queue_wait_us plus the excluded traces"
    );
    shutdown(addr, handle);
}

/// The micro-batcher groups each batch's sessions into contiguous
/// feature-hash shard ranges before scoring. The regrouping must be
/// invisible in the replies (scores bit-identical, in request order) and
/// visible in the stats (per-shard occupancy counters sum to the sessions
/// scored).
#[test]
fn shard_regrouping_is_score_invisible_and_occupancy_accounts_every_session() {
    let (ds, bytes) = tiny_fixture();
    let cfg = DaemonConfig {
        workers: 4,
        ..DaemonConfig::default()
    };
    let (addr, handle) = start_daemon(&bytes, cfg, FaultPlan::none());
    let mut client = connect(addr);

    let indices = nonempty(&ds, 8);
    let (_, scored) = client
        .score(wire_sessions(&ds, &indices), 0)
        .expect("score succeeds");

    // Request order and bit-identity against the local reference.
    let local = Scorer::with_config(
        FrozenModel::decode(&bytes).unwrap(),
        ScorerConfig::default(),
    )
    .unwrap();
    let out = local.score(&ds, &indices);
    let mut off = 0usize;
    for (k, &i) in indices.iter().enumerate() {
        let n = ds.sessions[i].events.len();
        assert_eq!(
            scored[k].attention,
            out.attention[off..off + n].to_vec(),
            "session {k} came back out of order or perturbed"
        );
        off += n;
    }

    let stats = client.stats().unwrap();
    assert_eq!(
        stats.shard_occupancy.len(),
        4,
        "one occupancy slot per worker"
    );
    let total: u64 = stats.shard_occupancy.iter().sum();
    assert_eq!(
        total,
        indices.len() as u64,
        "every scored session lands in exactly one shard"
    );
    shutdown(addr, handle);
}
