//! Protocol-level chaos against a live in-process daemon: malformed
//! payloads, truncated frames, hostile length headers, and a concurrent
//! storm mixing abuse with well-formed load. The invariant under test is
//! always the same — the daemon *answers or drops the one connection*,
//! and keeps serving everyone else.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::thread::JoinHandle;
use std::time::Duration;

use uae_core::{Uae, UaeConfig};
use uae_data::{generate, Dataset, SimConfig};
use uae_runtime::UaeError;
use uae_serve::{wire, Daemon, DaemonConfig, FaultPlan, FrozenModel, ServeClient, WireSession};

fn start_tiny_daemon() -> (Dataset, SocketAddr, JoinHandle<Result<(), UaeError>>) {
    let ds = generate(&SimConfig::tiny(), 41);
    let cfg = UaeConfig {
        gru_hidden: 4,
        mlp_hidden: vec![4],
        ..UaeConfig::default()
    };
    let uae = Uae::new(&ds.schema, cfg);
    let frozen = FrozenModel::from_uae(&uae, &ds.schema, 15.0);
    let daemon =
        Daemon::bind(frozen, DaemonConfig::default(), FaultPlan::none()).expect("bind on port 0");
    let addr = daemon.local_addr();
    let handle = std::thread::spawn(move || daemon.run());
    (ds, addr, handle)
}

fn connect(addr: SocketAddr) -> ServeClient {
    ServeClient::connect_timeout(&addr.to_string(), Duration::from_secs(5))
        .expect("connect to in-process daemon")
}

fn good_request(ds: &Dataset) -> Vec<WireSession> {
    let idx = (0..ds.sessions.len())
        .find(|&i| !ds.sessions[i].events.is_empty())
        .expect("fixture has a non-empty session");
    vec![WireSession::from_dataset(ds, idx)]
}

fn shutdown(addr: SocketAddr, handle: JoinHandle<Result<(), UaeError>>) {
    connect(addr)
        .shutdown()
        .expect("daemon acknowledges shutdown");
    handle
        .join()
        .expect("run() thread must not panic")
        .expect("run() returns Ok");
}

#[test]
fn malformed_payloads_draw_typed_replies_and_the_connection_survives() {
    let (ds, addr, handle) = start_tiny_daemon();
    let mut client = connect(addr);

    // Well-formed frames, hostile bodies. The frame boundary holds, so
    // every one must be *answered* (typed error) on a connection that
    // stays usable.
    let hostile: [&[u8]; 4] = [
        &[0xEE],                              // unknown request kind
        &[1u8],                               // Score with a truncated body
        &[1u8, 0xFF, 0xFF, 0xFF, 0xFF, 0x42], // Score with insane counts
        &[],                                  // empty payload
    ];
    for payload in hostile {
        match client.call_raw_payload(payload) {
            Err(UaeError::Protocol { .. }) => {}
            other => panic!("payload {payload:?}: expected typed Protocol reply, got {other:?}"),
        }
    }

    // Same connection, same daemon: a well-formed request still scores.
    client
        .score(good_request(&ds), 0)
        .expect("connection survives malformed payloads");
    let stats = connect(addr).stats().unwrap();
    assert!(stats.protocol_errors >= hostile.len() as u64);
    shutdown(addr, handle);
}

#[test]
fn truncated_frame_hangups_never_wedge_the_daemon() {
    let (ds, addr, handle) = start_tiny_daemon();

    // Five connections each promise a 1 KiB frame, deliver 17 bytes, and
    // vanish. Each is a mid-frame EOF the daemon must charge to that
    // connection alone.
    for _ in 0..5 {
        let throwaway = connect(addr);
        let mut partial = (1024u32).to_le_bytes().to_vec();
        partial.extend_from_slice(&[0xAB; 17]);
        throwaway
            .send_bytes_and_hangup(&partial)
            .expect("raw write");
    }

    // The daemon shrugged all five off.
    let mut client = connect(addr);
    client.ping().expect("daemon alive after truncated frames");
    client
        .score(good_request(&ds), 0)
        .expect("scoring path intact after truncated frames");
    shutdown(addr, handle);
}

#[test]
fn oversized_length_header_is_answered_then_dropped() {
    let (_ds, addr, handle) = start_tiny_daemon();

    // Claim a frame larger than MAX_FRAME. The daemon must refuse without
    // allocating, answer with a typed error frame, and drop the
    // connection (framing is unrecoverable).
    let mut raw = TcpStream::connect(addr).unwrap();
    raw.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let hostile = (wire::MAX_FRAME as u32 + 1).to_le_bytes();
    raw.write_all(&hostile).unwrap();
    raw.flush().unwrap();

    let mut reply = Vec::new();
    raw.read_to_end(&mut reply)
        .expect("daemon replies then closes (EOF), not a hang");
    assert!(
        reply.len() > 4,
        "expected a framed error reply before the drop, got {} bytes",
        reply.len()
    );

    // Everyone else is unaffected.
    connect(addr)
        .ping()
        .expect("daemon alive after hostile header");
    let stats = connect(addr).stats().unwrap();
    assert!(stats.protocol_errors >= 1);
    shutdown(addr, handle);
}

#[test]
fn chaos_storm_never_starves_well_formed_load() {
    let (ds, addr, handle) = start_tiny_daemon();
    let per_client = 15usize;

    let all_ok = std::thread::scope(|scope| {
        // Two well-behaved closed-loop clients...
        let mut good = Vec::new();
        for _ in 0..2 {
            let sessions = good_request(&ds);
            good.push(scope.spawn(move || {
                let mut c = connect(addr);
                (0..per_client).all(|_| c.score(sessions.clone(), 0).is_ok())
            }));
        }
        // ...while an attacker alternates malformed payloads and
        // truncated-frame hangups as fast as it can.
        let attacker = scope.spawn(move || {
            for round in 0..per_client {
                if round % 2 == 0 {
                    let mut c = connect(addr);
                    let _ = c.call_raw_payload(&[0xEE, 0xEE, 0xEE]);
                } else {
                    let c = connect(addr);
                    let mut partial = (4096u32).to_le_bytes().to_vec();
                    partial.push(0x00);
                    let _ = c.send_bytes_and_hangup(&partial);
                }
            }
        });
        let ok = good.into_iter().all(|j| j.join().unwrap());
        attacker.join().unwrap();
        ok
    });
    assert!(
        all_ok,
        "a well-formed request failed during the chaos storm"
    );

    let stats = connect(addr).stats().unwrap();
    assert!(stats.requests >= (2 * per_client) as u64);
    assert!(stats.protocol_errors >= 1);
    shutdown(addr, handle);
}
