//! End-to-end contracts of the embedding scale-out PR: a dense model
//! exported as `.uaem` v2 and v3 must score bit-identically, the
//! memory-mapped v3 path must match the copy path bit-for-bit, and hashed
//! artifacts must round-trip with their bucket config intact.

use uae_core::{Uae, UaeConfig};
use uae_data::{generate, Dataset, SimConfig};
use uae_serve::{FrozenModel, Scorer};

fn trained(hash_buckets: usize) -> (Dataset, Uae) {
    let ds = generate(&SimConfig::tiny(), 17);
    let cfg = UaeConfig {
        gru_hidden: 8,
        mlp_hidden: vec![8],
        epochs: 1,
        hash_buckets,
        ..UaeConfig::default()
    };
    let mut uae = Uae::new(&ds.schema, cfg);
    let sessions: Vec<usize> = (0..ds.sessions.len()).collect();
    let mut sup = uae_runtime::Supervisor::disabled();
    uae.fit_supervised(&ds, &sessions, &mut sup).unwrap();
    (ds, uae)
}

fn scratch(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("uae_embed_scale_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The headline format contract: the container version is transport, not
/// semantics. One trained model exported as v2 (opaque blobs) and as v3
/// (mapped arena), loaded back through the copy decoder *and* through the
/// zero-copy `open`, produces bit-identical attention/propensity scores.
#[test]
fn v2_and_v3_exports_score_bit_identically() {
    let (ds, uae) = trained(0);
    let frozen = FrozenModel::from_uae(&uae, &ds.schema, 15.0);
    let dir = scratch("v2v3");
    let v2_path = dir.join("model_v2.uaem");
    let v3_path = dir.join("model_v3.uaem");
    std::fs::write(&v2_path, frozen.encode_v2()).unwrap();
    frozen.write_to(&v3_path).unwrap();

    let sessions: Vec<usize> = (0..ds.sessions.len()).collect();
    let score = |frozen: FrozenModel| {
        let out = Scorer::new(frozen).unwrap().score(&ds, &sessions);
        (out.attention, out.propensity, out.weights)
    };
    let base = score(FrozenModel::read_from(&v2_path).unwrap());
    let v3_copy = score(FrozenModel::read_from(&v3_path).unwrap());
    assert_eq!(base, v3_copy, "v3 copy decode diverged from v2");
    let v3_mapped = FrozenModel::open(&v3_path).unwrap();
    assert!(
        v3_mapped.mapped().is_some(),
        "open() should map a v3 file zero-copy"
    );
    assert_eq!(base, score(v3_mapped), "mapped v3 diverged from v2");
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A hashed model survives the v3 round trip (bucket config is
/// architectural) and the rebuilt artifact scores bit-identically to the
/// in-memory original — including through the mapped path.
#[test]
fn hashed_artifact_round_trips_and_scores_identically() {
    let (ds, uae) = trained(32);
    let sessions: Vec<usize> = (0..ds.sessions.len()).collect();
    let frozen = FrozenModel::from_uae(&uae, &ds.schema, 15.0);
    assert_eq!(frozen.hash_buckets, 32);

    let dir = scratch("hashed");
    let path = dir.join("hashed.uaem");
    frozen.write_to(&path).unwrap();

    let cfg = uae_serve::ScorerConfig::default();
    let base = Scorer::from_uae(uae, 15.0, cfg).score(&ds, &sessions);
    for frozen in [
        FrozenModel::read_from(&path).unwrap(),
        FrozenModel::open(&path).unwrap(),
    ] {
        assert_eq!(frozen.hash_buckets, 32, "bucket config lost in transit");
        let out = Scorer::new(frozen).unwrap().score(&ds, &sessions);
        assert_eq!(out.attention, base.attention);
        assert_eq!(out.propensity, base.propensity);
        assert_eq!(out.weights, base.weights);
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Thread count must not perturb hashed scoring (the daemon shards work
/// across per-core workers; scores have to be placement-invariant).
#[test]
fn hashed_scoring_is_thread_count_invariant() {
    let (ds, uae) = trained(32);
    let sessions: Vec<usize> = (0..ds.sessions.len()).collect();
    let frozen = FrozenModel::from_uae(&uae, &ds.schema, 15.0);
    let run = |threads: usize| {
        uae_tensor::with_num_threads(threads, || {
            Scorer::new(frozen.clone()).unwrap().score(&ds, &sessions)
        })
    };
    let one = run(1);
    let four = run(4);
    assert_eq!(one.attention, four.attention);
    assert_eq!(one.propensity, four.propensity);
}
