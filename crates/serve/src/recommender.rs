//! Frozen downstream recommenders: `.uaem` variant 2 and the batched
//! [`RecScorer`].
//!
//! A [`FrozenRecommender`] snapshots any Table-IV model — the feature
//! schema, the [`ModelKind`] tag, the [`ModelConfig`] hyper-parameters, and
//! the parameter arena as a `uae_tensor::serialize` "UAEP" blob — in the
//! same `UAEM` container as the sequential UAE snapshot, distinguished by
//! the variant byte. [`FrozenArtifact`] sniffs that byte so callers that do
//! not know the variant up front (the `score` CLI) can decode either.
//!
//! Scoring reuses the one-implementation forward: [`RecScorer`] drives the
//! model's tape-free [`Recommender::infer`] over sequential index-range
//! batches — the same batching scheme as the training-side
//! `uae_models::predict` — so batched scores are bit-identical to the tape
//! path at any batch size (the kernels are row-independent).

use std::path::Path;

use uae_data::{FeatureSchema, FlatData};
use uae_models::{ModelConfig, ModelKind, Recommender};
use uae_runtime::checkpoint::{ByteReader, ByteWriter, CheckpointError};
use uae_runtime::UaeError;
use uae_tensor::{load_params, sigmoid, Params, Rng};

use crate::model::{
    check_header, get_schema, put_schema, read_file, write_atomic, MAGIC, VARIANT_RECOMMENDER,
    VERSION,
};
use crate::FrozenModel;

/// Stable on-disk tags for [`ModelKind`] (do not reorder).
const KIND_TAGS: [(ModelKind, u8); 7] = [
    (ModelKind::Fm, 0),
    (ModelKind::WideDeep, 1),
    (ModelKind::DeepFm, 2),
    (ModelKind::YoutubeNet, 3),
    (ModelKind::Dcn, 4),
    (ModelKind::AutoInt, 5),
    (ModelKind::DcnV2, 6),
];

fn kind_tag(kind: ModelKind) -> u8 {
    KIND_TAGS.iter().find(|(k, _)| *k == kind).unwrap().1
}

fn kind_from_tag(tag: u8) -> Result<ModelKind, CheckpointError> {
    KIND_TAGS
        .iter()
        .find(|(_, t)| *t == tag)
        .map(|(k, _)| *k)
        .ok_or(CheckpointError::Corrupt("bad recommender-kind tag"))
}

/// A frozen downstream recommender: everything needed to rebuild a trained
/// Table-IV model for tape-free batched scoring.
#[derive(Debug, Clone, PartialEq)]
pub struct FrozenRecommender {
    /// Feature schema the model was trained against.
    pub schema: FeatureSchema,
    /// Which Table-IV architecture the arena belongs to.
    pub kind: ModelKind,
    /// Hyper-parameters needed to rebuild the architecture.
    pub config: ModelConfig,
    /// The parameter arena as a UAEP blob.
    pub params: Vec<u8>,
}

impl FrozenRecommender {
    /// Freezes a trained recommender's parameter arena together with the
    /// architecture recipe that rebuilds it.
    pub fn new(
        schema: &FeatureSchema,
        kind: ModelKind,
        config: &ModelConfig,
        params: &Params,
    ) -> FrozenRecommender {
        FrozenRecommender {
            schema: schema.clone(),
            kind,
            config: config.clone(),
            params: uae_tensor::save_params(params),
        }
    }

    /// Rebuilds the model and loads the frozen arena into it. The UAEP
    /// loader validates every tensor name and shape against the freshly
    /// built architecture, so a snapshot exported from a different schema
    /// or config fails with a typed [`UaeError::Decode`].
    pub fn build(&self) -> Result<(Box<dyn Recommender + Send + Sync>, Params), UaeError> {
        // The seed only affects initial values, which load_params overwrites.
        let (model, mut params) =
            self.kind
                .build(&self.schema, &self.config, &mut Rng::seed_from_u64(0));
        load_params(&mut params, &self.params).map_err(UaeError::Decode)?;
        Ok((model, params))
    }

    /// Serializes to `.uaem` bytes (variant 2).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_bytes(MAGIC.as_slice());
        w.put_u32(VERSION);
        w.put_u8(VARIANT_RECOMMENDER);
        w.put_u8(kind_tag(self.kind));
        put_schema(&mut w, &self.schema);
        // Architecture.
        w.put_u32(self.config.embed_dim as u32);
        w.put_u32(self.config.hidden.len() as u32);
        for &h in &self.config.hidden {
            w.put_u32(h as u32);
        }
        w.put_u32(self.config.cross_layers as u32);
        w.put_u32(self.config.attn_heads as u32);
        w.put_u32(self.config.attn_head_dim as u32);
        w.put_u32(self.config.attn_layers as u32);
        // v3: hashed-embedding config words.
        w.put_u32(self.config.hash_buckets as u32);
        w.put_u32(self.config.hash_k as u32);
        // Arena.
        w.put_bytes(&self.params);
        w.into_bytes()
    }

    /// Decodes `.uaem` bytes; rejects non-recommender variants. Sniff with
    /// [`FrozenArtifact::decode`] when the variant is not known up front.
    pub fn decode(bytes: &[u8]) -> Result<FrozenRecommender, UaeError> {
        let (mut r, version) = check_header(bytes)?;
        let inner = |r: &mut ByteReader| -> Result<FrozenRecommender, CheckpointError> {
            if r.get_u8()? != VARIANT_RECOMMENDER {
                return Err(CheckpointError::Corrupt(
                    "not a downstream-recommender artifact; decode via FrozenArtifact",
                ));
            }
            FrozenRecommender::decode_body(r, version)
        };
        inner(&mut r).map_err(UaeError::Checkpoint)
    }

    /// Decodes the payload after the variant byte (shared with the
    /// [`FrozenArtifact`] sniffing path). v2 predates hashed embeddings,
    /// so its config decodes dense (0 buckets).
    fn decode_body(r: &mut ByteReader, version: u32) -> Result<FrozenRecommender, CheckpointError> {
        let kind = kind_from_tag(r.get_u8()?)?;
        let schema = get_schema(r)?;
        let embed_dim = r.get_u32()? as usize;
        let n_hidden = r.get_u32()? as usize;
        let mut hidden = Vec::with_capacity(n_hidden.min(1 << 10));
        for _ in 0..n_hidden {
            hidden.push(r.get_u32()? as usize);
        }
        let cross_layers = r.get_u32()? as usize;
        let attn_heads = r.get_u32()? as usize;
        let attn_head_dim = r.get_u32()? as usize;
        let attn_layers = r.get_u32()? as usize;
        let (hash_buckets, hash_k) = if version >= crate::model::VERSION {
            (r.get_u32()? as usize, r.get_u32()? as usize)
        } else {
            (0, 2)
        };
        let config = ModelConfig {
            embed_dim,
            hidden,
            cross_layers,
            attn_heads,
            attn_head_dim,
            attn_layers,
            hash_buckets,
            hash_k,
        };
        let params = r.get_bytes()?;
        Ok(FrozenRecommender {
            schema,
            kind,
            config,
            params,
        })
    }

    /// Writes the snapshot to `path` atomically (sibling `.tmp` + rename).
    pub fn write_to(&self, path: &Path) -> Result<(), UaeError> {
        write_atomic(path, &self.encode())
    }

    /// Reads and decodes a snapshot from `path`.
    pub fn read_from(path: &Path) -> Result<FrozenRecommender, UaeError> {
        FrozenRecommender::decode(&read_file(path)?)
    }
}

/// Any `.uaem` artifact, discriminated by the container's variant byte.
///
/// Use this when the caller does not know up front whether a file holds a
/// sequential/local UAE snapshot or a downstream recommender (e.g. the
/// `score` CLI, which accepts either).
#[derive(Debug, Clone, PartialEq)]
pub enum FrozenArtifact {
    /// Variant 0/1: the attention/propensity model ([`FrozenModel`]).
    Uae(FrozenModel),
    /// Variant 2: a Table-IV downstream recommender.
    Recommender(FrozenRecommender),
}

impl FrozenArtifact {
    /// Decodes either artifact variant by sniffing the variant byte.
    pub fn decode(bytes: &[u8]) -> Result<FrozenArtifact, UaeError> {
        let (mut r, version) = check_header(bytes)?;
        let variant = r.get_u8().map_err(UaeError::Checkpoint)?;
        if variant == VARIANT_RECOMMENDER {
            FrozenRecommender::decode_body(&mut r, version)
                .map(FrozenArtifact::Recommender)
                .map_err(UaeError::Checkpoint)
        } else {
            // Re-decode from the top so FrozenModel::decode owns the full
            // variant validation (including the unknown-tag error).
            FrozenModel::decode(bytes).map(FrozenArtifact::Uae)
        }
    }

    /// Reads and decodes either artifact variant from `path`.
    pub fn read_from(path: &Path) -> Result<FrozenArtifact, UaeError> {
        FrozenArtifact::decode(&read_file(path)?)
    }
}

/// The tape-free batched scoring engine for downstream recommenders.
///
/// Scores flat event sets in sequential index-range batches — the same
/// scheme as the training-side `uae_models::predict` — via the model's
/// [`Recommender::infer`]. Because the forward kernels are row-independent
/// and `infer` shares its body with the tape forward, the outputs are
/// bit-identical to `predict` at any batch size.
pub struct RecScorer {
    model: Box<dyn Recommender + Send + Sync>,
    params: Params,
    batch_size: usize,
}

impl RecScorer {
    /// Rebuilds the model from a frozen snapshot, with the batch size taken
    /// from `UAE_SERVE_BATCH` (default 64, shared with [`crate::Scorer`]).
    pub fn new(frozen: FrozenRecommender) -> Result<RecScorer, UaeError> {
        RecScorer::with_batch_size(frozen, crate::ScorerConfig::from_env().batch_size)
    }

    /// Rebuilds the model with an explicit batch size.
    pub fn with_batch_size(
        frozen: FrozenRecommender,
        batch_size: usize,
    ) -> Result<RecScorer, UaeError> {
        assert!(batch_size > 0, "batch_size must be positive");
        let (model, mut params) = frozen.build()?;
        // Frozen (shared) params make the tape-free forward's per-batch
        // weight clones O(1) handle copies instead of memcpys.
        params.freeze();
        Ok(RecScorer {
            model,
            params,
            batch_size,
        })
    }

    /// Model family name as printed in the paper's tables.
    pub fn model_name(&self) -> &'static str {
        self.model.name()
    }

    /// The number of events scored per forward batch.
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// Scores every event in `data`: σ(logits) in event order,
    /// bit-identical to the training-side `predict`.
    pub fn score(&self, data: &FlatData) -> Vec<f32> {
        let _request = uae_obs::span("serve.rec_request");
        let mut scores = Vec::with_capacity(data.len());
        let mut start = 0;
        let mut batches = 0u64;
        while start < data.len() {
            let span = uae_obs::span("serve.rec_batch");
            let end = (start + self.batch_size).min(data.len());
            let idx: Vec<usize> = (start..end).collect();
            let batch = data.gather(&idx);
            let logits = self.model.infer(&self.params, &batch);
            scores.extend(logits.data().iter().map(|&z| sigmoid(z)));
            let micros = span.elapsed().as_micros().max(1) as f64;
            uae_obs::gauge(
                "serve.rec_batch_events_per_sec",
                (end - start) as f64 / (micros / 1e6),
            );
            batches += 1;
            start = end;
        }
        uae_obs::counter("serve.rec_batches", batches);
        uae_obs::counter("serve.rec_events", scores.len() as u64);
        // Publishes this thread's kernel + exec.arena.* counters, so serving
        // dashboards can watch steady-state heap_allocs stay at zero.
        uae_tensor::emit_backend_telemetry();
        scores
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uae_data::{generate, SimConfig};
    use uae_models::{predict, train, LabelMode, TrainConfig};

    fn trained(kind: ModelKind) -> (FlatData, FrozenRecommender, Params) {
        let ds = generate(&SimConfig::tiny(), 9);
        let sessions: Vec<usize> = (0..ds.sessions.len()).collect();
        let flat = FlatData::from_sessions(&ds, &sessions);
        let cfg = ModelConfig::default();
        let mut rng = Rng::seed_from_u64(3);
        let (model, mut params) = kind.build(&ds.schema, &cfg, &mut rng);
        train(
            model.as_ref(),
            &mut params,
            &flat,
            None,
            None,
            LabelMode::Observed,
            &TrainConfig {
                epochs: 1,
                ..TrainConfig::default()
            },
        );
        let frozen = FrozenRecommender::new(&ds.schema, kind, &cfg, &params);
        (flat, frozen, params)
    }

    #[test]
    fn encode_decode_round_trips() {
        let (_flat, frozen, _params) = trained(ModelKind::WideDeep);
        let decoded = FrozenRecommender::decode(&frozen.encode()).unwrap();
        assert_eq!(decoded, frozen);
    }

    #[test]
    fn build_restores_exact_parameter_values() {
        let (_flat, frozen, params) = trained(ModelKind::Dcn);
        let (_model, rebuilt) = frozen.build().unwrap();
        assert_eq!(
            uae_tensor::save_params(&rebuilt),
            uae_tensor::save_params(&params)
        );
    }

    #[test]
    fn scorer_matches_training_predict_bitwise() {
        for kind in [ModelKind::WideDeep, ModelKind::Dcn] {
            let (flat, frozen, params) = trained(kind);
            let (model, _) = frozen.build().unwrap();
            let reference = predict(model.as_ref(), &params, &flat, 64);
            let scorer = RecScorer::with_batch_size(frozen, 64).unwrap();
            assert_eq!(scorer.score(&flat), reference, "{}", kind.name());
        }
    }

    #[test]
    fn batch_size_does_not_change_scores() {
        let (flat, frozen, _params) = trained(ModelKind::AutoInt);
        let base = RecScorer::with_batch_size(frozen.clone(), 64)
            .unwrap()
            .score(&flat);
        for bs in [1usize, 7, 1024] {
            let out = RecScorer::with_batch_size(frozen.clone(), bs)
                .unwrap()
                .score(&flat);
            assert_eq!(out, base, "batch_size={bs}");
        }
    }

    #[test]
    fn artifact_sniffs_both_variants() {
        let (_flat, frozen, _params) = trained(ModelKind::Fm);
        match FrozenArtifact::decode(&frozen.encode()).unwrap() {
            FrozenArtifact::Recommender(r) => assert_eq!(r, frozen),
            other => panic!("expected Recommender variant, got {other:?}"),
        }

        let ds = generate(&SimConfig::tiny(), 5);
        let uae = uae_core::Uae::new(
            &ds.schema,
            uae_core::UaeConfig {
                gru_hidden: 8,
                mlp_hidden: vec![8],
                ..Default::default()
            },
        );
        let fm = FrozenModel::from_uae(&uae, &ds.schema, 15.0);
        match FrozenArtifact::decode(&fm.encode()).unwrap() {
            FrozenArtifact::Uae(m) => assert_eq!(m, fm),
            other => panic!("expected Uae variant, got {other:?}"),
        }
    }

    #[test]
    fn uae_decoder_rejects_recommender_artifact() {
        let (_flat, frozen, _params) = trained(ModelKind::Fm);
        assert!(matches!(
            FrozenModel::decode(&frozen.encode()),
            Err(UaeError::Checkpoint(CheckpointError::Corrupt(_)))
        ));
        let ds = generate(&SimConfig::tiny(), 5);
        let uae = uae_core::Uae::new(
            &ds.schema,
            uae_core::UaeConfig {
                gru_hidden: 8,
                mlp_hidden: vec![8],
                ..Default::default()
            },
        );
        let fm = FrozenModel::from_uae(&uae, &ds.schema, 15.0);
        assert!(matches!(
            FrozenRecommender::decode(&fm.encode()),
            Err(UaeError::Checkpoint(CheckpointError::Corrupt(_)))
        ));
    }

    #[test]
    fn mismatched_schema_fails_with_decode_error() {
        let (_flat, mut frozen, _params) = trained(ModelKind::WideDeep);
        frozen.schema.cat_cardinalities[0] += 7;
        match frozen.build() {
            Err(UaeError::Decode(_)) => {}
            Err(other) => panic!("expected Decode error, got {other:?}"),
            Ok(_) => panic!("expected Decode error, got Ok"),
        }
    }

    #[test]
    fn file_round_trip_is_atomic_and_exact() {
        let (_flat, frozen, _params) = trained(ModelKind::DcnV2);
        let dir = std::env::temp_dir().join(format!("uaem_rec_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("rec.uaem");
        frozen.write_to(&path).unwrap();
        assert!(!path.with_extension("tmp").exists(), "tmp file left behind");
        match FrozenArtifact::read_from(&path).unwrap() {
            FrozenArtifact::Recommender(r) => assert_eq!(r, frozen),
            other => panic!("expected Recommender variant, got {other:?}"),
        }
        assert_eq!(FrozenRecommender::read_from(&path).unwrap(), frozen);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
