//! # uae-serve — tape-free batched inference for trained UAE models
//!
//! Training (in `uae-core`) runs every forward pass through the autodiff
//! tape so gradients can flow. Serving needs none of that machinery: this
//! crate freezes a trained model into a compact read-only snapshot and
//! scores request batches through inference-only kernels that never touch
//! the tape, while staying **bit-identical** to the training forward.
//!
//! Artifacts — one `.uaem` container (magic `UAEM`, version 3; version-2
//! files still decode), three variants discriminated by a variant byte:
//!
//! - [`FrozenModel`] (variants 0/1) — a versioned, self-describing snapshot
//!   of the attention network `g`, the propensity network `h`, the feature
//!   schema they were trained against, the Eq. (19) exponent γ, and (v3)
//!   the hashed-embedding config. v3 lays every tensor out in one
//!   16-byte-aligned `f32` arena at fixed header-recorded offsets, so
//!   [`FrozenModel::open`] can memory-map the file and serve the arena
//!   *in place* — cold-start decode is microseconds regardless of
//!   artifact size, and resident memory is only the pages scoring
//!   touches. [`FrozenModel::read_from`] copy-decodes both versions
//!   anywhere. Exportable from a live [`uae_core::Uae`] or from a
//!   training checkpoint, validated on load through the existing
//!   [`uae_runtime::UaeError`] taxonomy (hostile offsets, truncations,
//!   and bit flips are typed errors on both load paths — fuzz-tested).
//! - [`FrozenRecommender`] (variant 2) — any Table-IV downstream model
//!   (FM … DCN-V2): the [`uae_models::ModelKind`] tag, its
//!   [`uae_models::ModelConfig`], and the trained parameter arena.
//! - [`FrozenArtifact`] — sniffs the variant byte and decodes either, for
//!   callers that accept any `.uaem` file.
//!
//! Scoring engines:
//!
//! - [`Scorer`] — buckets sessions by length, pads once per batch, runs the
//!   tape-free UAE forward across the deterministic worker pool, and
//!   returns per-event attention α̂, propensity p̂, and downstream
//!   confidence weights `w = 1 − (α̂ + 1)^(−γ)` in request order.
//! - [`RecScorer`] — batch-scores flat events through a downstream
//!   recommender's tape-free forward, bit-identical to the training-side
//!   `uae_models::predict` at any batch size.
//!
//! Telemetry: when `uae-obs` is enabled, scoring emits `serve.request` /
//! `serve.batch` (and `serve.rec_request` / `serve.rec_batch`) spans plus
//! `serve.sessions` / `serve.events` / `serve.batches` (and `serve.rec_*`)
//! counters and per-batch throughput gauges.
//!
//! The serving daemon (`uae serve`):
//!
//! - [`Daemon`] — a long-running TCP scoring service over a length-prefixed
//!   binary protocol ([`wire`]) that degrades instead of dying: a bounded
//!   [`queue::ServeQueue`] coalesces concurrent requests into micro-batches
//!   under per-request deadlines; overload is shed with typed errors;
//!   panicking scorer workers restart behind deterministic backoff; and
//!   `.uaem` hot-swaps drain in-flight batches and roll back to last-good
//!   on a bad artifact.
//! - [`ServeClient`] — the blocking client, including the raw-byte chaos
//!   helpers the fault-injection harness uses.
//! - [`FaultPlan`] — `UAE_FAULT_*` fault injection (slow-scorer stalls,
//!   scheduled worker panics) for the chaos harness.
//!
//! Knobs: `UAE_SERVE_BATCH` (sessions per batch, default 64) and
//! `UAE_SERVE_MAX_LEN` (optional truncation); the daemon adds
//! `UAE_SERVE_ADDR` / `UAE_SERVE_WORKERS` / `UAE_SERVE_QUEUE` /
//! `UAE_SERVE_DEADLINE_MS` plus the `UAE_FAULT_*` chaos knobs, and the
//! observability layer adds `UAE_TRACE` / `UAE_FLIGHT_RECORDER_N` /
//! `UAE_METRICS_INTERVAL_MS` / `UAE_FLIGHT_RECORDER_DIR` (see
//! [`daemon`]). Thread count and kernel selection come from the compute
//! backend (`UAE_NUM_THREADS`, `UAE_KERNELS`).

pub mod client;
pub mod daemon;
pub mod fault;
pub mod model;
pub mod queue;
pub mod recommender;
pub mod scorer;
pub mod wire;

pub use client::ServeClient;
pub use daemon::{Daemon, DaemonConfig};
pub use fault::FaultPlan;
pub use model::FrozenModel;
pub use recommender::{FrozenArtifact, FrozenRecommender, RecScorer};
pub use scorer::{ScoreOutput, Scorer, ScorerConfig};
pub use wire::{SessionScores, StatsSnapshot, WireEvent, WireHist, WireSession};
