//! # uae-serve — tape-free batched inference for trained UAE models
//!
//! Training (in `uae-core`) runs every forward pass through the autodiff
//! tape so gradients can flow. Serving needs none of that machinery: this
//! crate freezes a trained model into a compact read-only snapshot and
//! scores request batches through inference-only kernels that never touch
//! the tape, while staying **bit-identical** to the training forward.
//!
//! Two layers:
//!
//! - [`FrozenModel`] — the `.uaem` frozen-model format: a versioned,
//!   self-describing snapshot of the attention network `g`, the propensity
//!   network `h`, the feature schema they were trained against, and the
//!   Eq. (19) exponent γ. Exportable from a live [`uae_core::Uae`] or from
//!   a training checkpoint, validated on load through the existing
//!   [`uae_runtime::UaeError`] taxonomy.
//! - [`Scorer`] — the batched scoring engine: buckets sessions by length,
//!   pads once per batch, runs the tape-free forward across the
//!   deterministic worker pool, and returns per-event attention α̂,
//!   propensity p̂, and downstream confidence weights
//!   `w = 1 − (α̂ + 1)^(−γ)` in request order.
//!
//! Telemetry: when `uae-obs` is enabled, scoring emits `serve.request` /
//! `serve.batch` spans plus `serve.sessions` / `serve.events` /
//! `serve.batches` counters and a per-batch throughput gauge.
//!
//! Knobs: `UAE_SERVE_BATCH` (sessions per batch, default 64) and
//! `UAE_SERVE_MAX_LEN` (optional truncation). Thread count and kernel
//! selection come from the compute backend (`UAE_NUM_THREADS`,
//! `UAE_KERNELS`).

pub mod model;
pub mod scorer;

pub use model::FrozenModel;
pub use scorer::{ScoreOutput, Scorer, ScorerConfig};
