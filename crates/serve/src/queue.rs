//! Bounded request queue with micro-batch coalescing.
//!
//! Connection threads [`push`](ServeQueue::push) one [`Job`] per `Score`
//! request; scorer workers [`pop_batch`](ServeQueue::pop_batch) greedily
//! coalesce queued jobs — possibly from many concurrent connections — into
//! one micro-batch up to the configured session budget. The queue is the
//! daemon's admission-control point: when the bounded depth is exceeded the
//! push fails with a typed [`UaeError::Overload`] that the connection thread
//! turns into a shed response, so overload degrades throughput instead of
//! growing memory without bound.
//!
//! Deadlines are *not* enforced here — a worker checks each popped job's
//! budget before spending compute on it, so a job that expired while queued
//! costs a reply, not a forward pass.

use std::collections::VecDeque;
use std::sync::mpsc::SyncSender;
use std::sync::{Condvar, Mutex};
use std::time::Instant;

use uae_obs::StageTimes;
use uae_runtime::UaeError;

use crate::wire::{SessionScores, WireSession};

/// What a worker sends back to the connection thread: the scored result (or
/// typed error) plus the per-stage timings measured so far. The connection
/// thread fills in `reply_write_us` after flushing the frame and closes the
/// trace.
pub type ReplyPayload = (Result<(u64, Vec<SessionScores>), UaeError>, StageTimes);

/// One admitted `Score` request, queued for a worker.
pub struct Job {
    /// Request-scoped trace id, minted at frame decode (`0` = tracing off).
    pub trace_id: u64,
    /// The sessions to score, exactly as decoded off the wire.
    pub sessions: Vec<WireSession>,
    /// When the request was admitted (starts the deadline clock).
    pub enqueued: Instant,
    /// The client's latency budget in milliseconds (`0` = no deadline).
    pub deadline_ms: u32,
    /// Where the scored result (or typed error) goes; the connection thread
    /// holds the receiving end. A dropped receiver (client disconnected
    /// mid-request) makes `send` fail, which workers ignore.
    pub reply: SyncSender<ReplyPayload>,
}

impl Job {
    /// True once the job has been waiting longer than its budget.
    pub fn expired(&self, now: Instant) -> bool {
        self.deadline_ms > 0
            && now.duration_since(self.enqueued).as_millis() as u64 >= u64::from(self.deadline_ms)
    }

    /// Milliseconds this job has waited so far.
    pub fn waited_ms(&self, now: Instant) -> u64 {
        now.duration_since(self.enqueued).as_millis() as u64
    }
}

struct Inner {
    jobs: VecDeque<Job>,
    /// Total sessions across all queued jobs (the bounded resource).
    depth: usize,
    closed: bool,
}

/// The bounded, condvar-backed job queue shared by connection threads and
/// scorer workers.
pub struct ServeQueue {
    inner: Mutex<Inner>,
    ready: Condvar,
    capacity: usize,
}

impl ServeQueue {
    /// A queue admitting at most `capacity` sessions across all queued jobs.
    pub fn new(capacity: usize) -> ServeQueue {
        ServeQueue {
            inner: Mutex::new(Inner {
                jobs: VecDeque::new(),
                depth: 0,
                closed: false,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Current queued depth in sessions (for gauges and `Stats`).
    pub fn depth(&self) -> usize {
        self.inner.lock().map(|g| g.depth).unwrap_or(0)
    }

    /// Admits a job, or sheds it with [`UaeError::Overload`] when the queue
    /// is over capacity or the daemon is shutting down.
    pub fn push(&self, job: Job) -> Result<(), UaeError> {
        let mut g = self.inner.lock().map_err(|_| UaeError::Unavailable {
            detail: "serving queue poisoned".into(),
        })?;
        if g.closed {
            return Err(UaeError::Unavailable {
                detail: "daemon is shutting down".into(),
            });
        }
        let incoming = job.sessions.len().max(1);
        if g.depth + incoming > self.capacity {
            return Err(UaeError::Overload {
                queue_depth: g.depth,
                limit: self.capacity,
            });
        }
        g.depth += incoming;
        g.jobs.push_back(job);
        drop(g);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks until at least one job is queued, then greedily coalesces
    /// queued jobs into a micro-batch of at most `max_sessions` sessions
    /// (the first job is always taken whole, so an oversized request still
    /// makes progress). Returns `None` once the queue is closed and
    /// drained — the worker's signal to exit.
    pub fn pop_batch(&self, max_sessions: usize) -> Option<Vec<Job>> {
        let mut g = self.inner.lock().ok()?;
        loop {
            if let Some(first) = g.jobs.pop_front() {
                let mut total = first.sessions.len().max(1);
                let mut batch = vec![first];
                while let Some(next) = g.jobs.front() {
                    let n = next.sessions.len().max(1);
                    if total + n > max_sessions.max(1) {
                        break;
                    }
                    let job = g.jobs.pop_front().expect("front() was Some");
                    total += n;
                    batch.push(job);
                }
                g.depth = g.depth.saturating_sub(total);
                if !g.jobs.is_empty() {
                    // Leftovers exist: wake another worker to keep draining.
                    self.ready.notify_one();
                }
                return Some(batch);
            }
            if g.closed {
                return None;
            }
            g = self.ready.wait(g).ok()?;
        }
    }

    /// Closes the queue: future pushes fail `Unavailable`, and workers exit
    /// once the backlog drains. Idempotent.
    pub fn close(&self) {
        if let Ok(mut g) = self.inner.lock() {
            g.closed = true;
        }
        self.ready.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc::sync_channel;
    use std::sync::Arc;

    fn job(n_sessions: usize) -> Job {
        let (tx, _rx) = sync_channel(1);
        Job {
            trace_id: 0,
            sessions: vec![WireSession { events: Vec::new() }; n_sessions],
            enqueued: Instant::now(),
            deadline_ms: 0,
            reply: tx,
        }
    }

    #[test]
    fn over_capacity_push_sheds_with_typed_overload() {
        let q = ServeQueue::new(4);
        q.push(job(3)).unwrap();
        match q.push(job(2)) {
            Err(UaeError::Overload { queue_depth, limit }) => {
                assert_eq!((queue_depth, limit), (3, 4));
            }
            other => panic!("expected Overload, got {other:?}"),
        }
        // A job that still fits is admitted.
        q.push(job(1)).unwrap();
        assert_eq!(q.depth(), 4);
    }

    #[test]
    fn pop_batch_coalesces_up_to_the_session_budget() {
        let q = ServeQueue::new(64);
        for n in [2usize, 3, 4, 5] {
            q.push(job(n)).unwrap();
        }
        let batch = q.pop_batch(9).unwrap();
        let sizes: Vec<usize> = batch.iter().map(|j| j.sessions.len()).collect();
        assert_eq!(sizes, vec![2, 3, 4]); // 2+3+4=9 fits, +5 would not
        assert_eq!(q.depth(), 5);
        // An oversized first job is still taken whole.
        let batch = q.pop_batch(1).unwrap();
        assert_eq!(batch.len(), 1);
        assert_eq!(batch[0].sessions.len(), 5);
        assert_eq!(q.depth(), 0);
    }

    #[test]
    fn close_drains_then_releases_workers() {
        let q = Arc::new(ServeQueue::new(8));
        q.push(job(1)).unwrap();
        q.close();
        assert!(matches!(q.push(job(1)), Err(UaeError::Unavailable { .. })));
        // Backlog still pops, then the queue reports exhaustion.
        assert_eq!(q.pop_batch(8).unwrap().len(), 1);
        assert!(q.pop_batch(8).is_none());
        // A blocked worker is released by close (no deadlock).
        let q2 = Arc::new(ServeQueue::new(8));
        let qc = q2.clone();
        let h = std::thread::spawn(move || qc.pop_batch(8).is_none());
        std::thread::sleep(std::time::Duration::from_millis(20));
        q2.close();
        assert!(h.join().unwrap());
    }

    #[test]
    fn expiry_follows_the_budget() {
        let mut j = job(1);
        j.deadline_ms = 5;
        let now = j.enqueued + std::time::Duration::from_millis(4);
        assert!(!j.expired(now));
        let later = j.enqueued + std::time::Duration::from_millis(6);
        assert!(j.expired(later));
        assert_eq!(j.waited_ms(later), 6);
        j.deadline_ms = 0; // no budget → never expires
        assert!(!j.expired(later + std::time::Duration::from_secs(60)));
    }
}
