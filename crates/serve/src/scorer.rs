//! The batched scoring engine: tape-free g/h forward plus Eq. (18–19)
//! reweighting over request batches.
//!
//! A [`Scorer`] owns a rebuilt [`Uae`] and scores *requests* — ordered sets
//! of session feature sequences — without ever touching the autodiff tape:
//!
//! 1. sessions are bucketed by length and padded into batches
//!    ([`uae_data::infer_seq_batches`] — deterministic, no RNG, so batch
//!    composition is a pure function of the request);
//! 2. each batch runs the tape-free forward ([`Uae::infer_batch`]), whose
//!    matrix ops ride the PR-2 blocked kernels, thread-local scratch pool,
//!    and deterministic row-partitioned worker pool — outputs are
//!    bit-identical to the training forward at any thread count;
//! 3. σ(logits) are scattered back to flat request order and the passive
//!    confidence weights `w = 1 − (α̂ + 1)^(−γ)` (Eq. 19) are attached.
//!
//! Per-batch latency and throughput are emitted through `uae-obs` as
//! `serve.*` spans/counters/gauges when telemetry is enabled.

use uae_core::{reweight, Uae};
use uae_data::{infer_seq_batches, Dataset, SeqBatch};
use uae_runtime::UaeError;
use uae_tensor::sigmoid;

use crate::model::FrozenModel;

/// Batching knobs of the scoring engine.
#[derive(Debug, Clone)]
pub struct ScorerConfig {
    /// Sessions per padded batch (`UAE_SERVE_BATCH`, default 64).
    pub batch_size: usize,
    /// Truncate sessions to this many steps (`UAE_SERVE_MAX_LEN`; default
    /// none, matching the training-side `predict` convention — only the
    /// default is bit-comparable to `Uae::predict`).
    pub max_len: Option<usize>,
}

impl Default for ScorerConfig {
    fn default() -> Self {
        ScorerConfig {
            batch_size: 64,
            max_len: None,
        }
    }
}

impl ScorerConfig {
    /// Reads `UAE_SERVE_BATCH` / `UAE_SERVE_MAX_LEN` over the defaults.
    /// Unparsable or zero values fall back to the default (serving knobs
    /// must never turn a request into a panic).
    pub fn from_env() -> ScorerConfig {
        let mut cfg = ScorerConfig::default();
        if let Ok(v) = std::env::var("UAE_SERVE_BATCH") {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n > 0 {
                    cfg.batch_size = n;
                }
            }
        }
        if let Ok(v) = std::env::var("UAE_SERVE_MAX_LEN") {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n > 0 {
                    cfg.max_len = Some(n);
                }
            }
        }
        cfg
    }
}

/// Flat per-event scores for one request, in request order (session by
/// session, step by step).
#[derive(Debug, Clone)]
pub struct ScoreOutput {
    /// Estimated attention α̂ = σ(g).
    pub attention: Vec<f32>,
    /// Estimated sequential propensity p̂ = σ(h).
    pub propensity: Vec<f32>,
    /// Eq. (19) confidence weights `w = 1 − (α̂ + 1)^(−γ)` for passive
    /// samples of a downstream recommender (Eq. 18).
    pub weights: Vec<f32>,
}

impl ScoreOutput {
    /// Number of scored events.
    pub fn len(&self) -> usize {
        self.attention.len()
    }

    pub fn is_empty(&self) -> bool {
        self.attention.is_empty()
    }
}

/// The tape-free batched scoring engine.
///
/// ```no_run
/// use uae_data::{generate, SimConfig};
/// use uae_serve::{FrozenModel, Scorer};
///
/// let frozen = FrozenModel::read_from("model.uaem".as_ref())?;
/// let scorer = Scorer::new(frozen)?;
/// let ds = generate(&SimConfig::tiny(), 7);
/// let sessions: Vec<usize> = (0..ds.sessions.len()).collect();
/// let out = scorer.score(&ds, &sessions);
/// assert_eq!(out.len(), ds.num_events());
/// # Ok::<(), uae_runtime::UaeError>(())
/// ```
pub struct Scorer {
    model: Uae,
    gamma: f32,
    cfg: ScorerConfig,
}

impl Scorer {
    /// Rebuilds the model from a frozen snapshot with env-derived batching
    /// knobs (see [`ScorerConfig::from_env`]).
    pub fn new(frozen: FrozenModel) -> Result<Scorer, UaeError> {
        Scorer::with_config(frozen, ScorerConfig::from_env())
    }

    /// Rebuilds the model with explicit batching knobs. The rebuilt
    /// parameters are frozen (shared, copy-on-write) so steady-state scoring
    /// never memcpys a weight matrix.
    pub fn with_config(frozen: FrozenModel, cfg: ScorerConfig) -> Result<Scorer, UaeError> {
        let gamma = frozen.gamma;
        let mut model = frozen.build()?;
        model.freeze_params();
        Ok(Scorer { model, gamma, cfg })
    }

    /// Wraps an already-built model (e.g. straight after training, skipping
    /// the export round trip). Freezes its parameters like
    /// [`Scorer::with_config`].
    pub fn from_uae(mut model: Uae, gamma: f32, cfg: ScorerConfig) -> Scorer {
        model.freeze_params();
        Scorer { model, gamma, cfg }
    }

    /// The Eq. (19) exponent this scorer applies.
    pub fn gamma(&self) -> f32 {
        self.gamma
    }

    /// The batching configuration in effect.
    pub fn config(&self) -> &ScorerConfig {
        &self.cfg
    }

    /// Scores a request: α̂, p̂, and Eq. (19) weights for every event of the
    /// listed sessions, in request order. Events beyond a configured
    /// `max_len` keep the neutral α̂ = p̂ = 0.5.
    pub fn score(&self, dataset: &Dataset, sessions: &[usize]) -> ScoreOutput {
        let _request = uae_obs::span("serve.request");
        let n: usize = sessions.iter().map(|&s| dataset.sessions[s].len()).sum();
        let mut attention = vec![0.5f32; n];
        let mut propensity = vec![0.5f32; n];
        // Prefix offsets of each requested session in flat order.
        let mut offsets = Vec::with_capacity(sessions.len());
        let mut acc = 0usize;
        for &s in sessions {
            offsets.push(acc);
            acc += dataset.sessions[s].len();
        }

        let batches = infer_seq_batches(dataset, sessions, self.cfg.batch_size, self.cfg.max_len);
        let mut scored = 0u64;
        for b in &batches {
            if b.steps == 0 {
                // A bucket made entirely of zero-event sessions: nothing to
                // run through the GRUs (a wire request may legally carry
                // empty sessions, which simply contribute no scores).
                continue;
            }
            let span = uae_obs::span("serve.batch");
            let inf = self.model.infer_batch(b);
            scatter(&inf.attention_logits, b, &offsets, &mut attention);
            scatter(&inf.propensity_logits, b, &offsets, &mut propensity);
            scored += b.valid_steps() as u64;
            let micros = span.elapsed().as_micros().max(1) as f64;
            uae_obs::gauge(
                "serve.batch_events_per_sec",
                b.valid_steps() as f64 / (micros / 1e6),
            );
        }
        uae_obs::counter("serve.batches", batches.len() as u64);
        uae_obs::counter("serve.sessions", sessions.len() as u64);
        uae_obs::counter("serve.events", scored);
        // Publishes this thread's kernel + exec.arena.* counters, so serving
        // dashboards can watch steady-state heap_allocs stay at zero.
        uae_tensor::emit_backend_telemetry();
        let weights = attention.iter().map(|&a| reweight(a, self.gamma)).collect();
        ScoreOutput {
            attention,
            propensity,
            weights,
        }
    }
}

/// Writes σ(logits) into flat request order via the batch's origin map —
/// the tape-free analogue of the training-side scatter.
fn scatter(logits: &[uae_tensor::Matrix], batch: &SeqBatch, offsets: &[usize], out: &mut [f32]) {
    for (t, vals) in logits.iter().enumerate() {
        for i in 0..batch.batch {
            if batch.mask[t][i] > 0.0 {
                let (pos, step) = batch.origin[t][i];
                out[offsets[pos] + step] = sigmoid(vals.get(i, 0));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uae_core::AttentionEstimator;
    use uae_data::{generate, SimConfig};

    fn scorer_and_data() -> (Dataset, Vec<usize>, Uae, Scorer) {
        let ds = generate(&SimConfig::tiny(), 3);
        let sessions: Vec<usize> = (0..ds.sessions.len()).collect();
        let cfg = uae_core::UaeConfig {
            gru_hidden: 8,
            mlp_hidden: vec![8],
            epochs: 1,
            ..Default::default()
        };
        let mut uae = Uae::new(&ds.schema, cfg);
        uae.fit(&ds, &sessions);
        let frozen = FrozenModel::from_uae(&uae, &ds.schema, 15.0);
        let scorer = Scorer::with_config(frozen, ScorerConfig::default()).unwrap();
        (ds, sessions, uae, scorer)
    }

    #[test]
    fn score_matches_training_predict_bitwise() {
        let (ds, sessions, uae, scorer) = scorer_and_data();
        let out = scorer.score(&ds, &sessions);
        assert_eq!(out.attention, uae.predict(&ds, &sessions));
        assert_eq!(out.propensity, uae.predict_propensity(&ds, &sessions));
    }

    #[test]
    fn weights_follow_eq_19() {
        let (ds, sessions, _uae, scorer) = scorer_and_data();
        let out = scorer.score(&ds, &sessions);
        assert_eq!(out.len(), ds.num_events());
        for (&a, &w) in out.attention.iter().zip(&out.weights) {
            assert_eq!(w, reweight(a, 15.0));
        }
    }

    #[test]
    fn batch_size_does_not_change_scores() {
        let (ds, sessions, _uae, scorer) = scorer_and_data();
        let base = scorer.score(&ds, &sessions);
        for bs in [1usize, 3, 128] {
            let frozen = FrozenModel::from_uae(&scorer.model, &ds.schema, 15.0);
            let s = Scorer::with_config(
                frozen,
                ScorerConfig {
                    batch_size: bs,
                    max_len: None,
                },
            )
            .unwrap();
            let out = s.score(&ds, &sessions);
            assert_eq!(out.attention, base.attention, "batch_size={bs}");
            assert_eq!(out.propensity, base.propensity, "batch_size={bs}");
        }
    }

    #[test]
    fn subset_and_reordered_requests_score_consistently() {
        let (ds, sessions, _uae, scorer) = scorer_and_data();
        let full = scorer.score(&ds, &sessions);
        // Score a reversed subset: each session's block must match the full
        // request's block for that session (row-independent forward).
        let subset: Vec<usize> = sessions.iter().rev().take(3).copied().collect();
        let out = scorer.score(&ds, &subset);
        let mut offset = 0usize;
        for &s in &subset {
            let full_offset: usize = sessions[..s].iter().map(|&x| ds.sessions[x].len()).sum();
            let len = ds.sessions[s].len();
            assert_eq!(
                &out.attention[offset..offset + len],
                &full.attention[full_offset..full_offset + len],
                "session {s}"
            );
            offset += len;
        }
    }

    #[test]
    fn empty_request_returns_empty_scores() {
        let (ds, _sessions, _uae, scorer) = scorer_and_data();
        let out = scorer.score(&ds, &[]);
        assert!(out.is_empty());
        assert_eq!(out.len(), 0);
    }

    #[test]
    fn zero_event_sessions_contribute_empty_blocks_without_disturbing_others() {
        let (mut ds, sessions, _uae, scorer) = scorer_and_data();
        let base = scorer.score(&ds, &sessions);
        // Interleave empty sessions among the real ones.
        let n_real = ds.sessions.len();
        for _ in 0..3 {
            ds.sessions.push(uae_data::Session {
                user: 0,
                day: 0,
                events: vec![],
            });
        }
        let mixed: Vec<usize> = vec![n_real, 0, n_real + 1, 1, 2, n_real + 2];
        let out = scorer.score(&ds, &mixed);
        // Flat length counts only real events; empty sessions add nothing.
        let expect: usize = [0usize, 1, 2].iter().map(|&s| ds.sessions[s].len()).sum();
        assert_eq!(out.len(), expect);
        // And the real sessions' scores are untouched by the empties.
        let alone = scorer.score(&ds, &[0, 1, 2]);
        assert_eq!(out.attention, alone.attention);
        let offset: usize = ds.sessions[0].len() + ds.sessions[1].len() + ds.sessions[2].len();
        assert_eq!(&out.attention[..], &base.attention[..offset]);
        // An all-empty request scores nothing and must not panic.
        let empties = scorer.score(&ds, &[n_real, n_real + 1, n_real + 2]);
        assert!(empties.is_empty());
    }

    #[test]
    fn truncation_leaves_neutral_tail() {
        let (ds, sessions, _uae, scorer) = scorer_and_data();
        let frozen = FrozenModel::from_uae(&scorer.model, &ds.schema, 15.0);
        let s = Scorer::with_config(
            frozen,
            ScorerConfig {
                batch_size: 4,
                max_len: Some(2),
            },
        )
        .unwrap();
        let out = s.score(&ds, &sessions);
        let mut offset = 0usize;
        for &sid in &sessions {
            let len = ds.sessions[sid].len();
            for t in 2..len {
                assert_eq!(out.attention[offset + t], 0.5);
                assert_eq!(out.propensity[offset + t], 0.5);
            }
            offset += len;
        }
    }
}
