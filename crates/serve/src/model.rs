//! The frozen model snapshot: a compact, read-only `.uaem` container.
//!
//! A `.uaem` file holds everything needed to reconstruct a trained [`Uae`]
//! for inference — the feature schema, the architecture hyper-parameters,
//! the propensity-head variant, the Eq. (19) reweighting exponent γ, and
//! the two parameter arenas (Θ_g / Θ_h) as `uae_tensor::serialize` "UAEP"
//! blobs — plus optional named extras (e.g. a downstream recommender's
//! arena). Unlike a `.uaec` training checkpoint it carries no optimizer
//! moments, RNG state, or trainer bookkeeping, so it is a fraction of the
//! size and loads straight into the tape-free serving path.
//!
//! The container reuses the checkpoint encoder/decoder idiom: a 4-byte
//! magic (`UAEM`), a version word, bounds-checked little-endian fields, and
//! atomic `.tmp` + rename writes. Failures surface through the existing
//! [`UaeError`] taxonomy: container-level damage (bad magic / version /
//! truncation / hostile arena offsets) maps to [`UaeError::Checkpoint`],
//! and a parameter blob that does not match the rebuilt architecture maps
//! to [`UaeError::Decode`] with the offending tensor name and shapes.
//!
//! ## v3: the memory-mappable param arena
//!
//! v3 moves the raw `f32` parameter data out of the length-prefixed header
//! into a contiguous **param arena** at the tail of the file. The header
//! stores, per parameter, its name, shape, and a 16-byte-aligned offset
//! into the arena; the arena's absolute file offset (itself 16-byte
//! aligned, zero-padded to get there) and length close the header. Because
//! every offset is fixed and aligned, [`FrozenModel::open`] can `mmap` the
//! file and point each weight [`uae_tensor::Matrix`] straight at the page
//! cache — no copy, no parse of the float data, and a model larger than
//! RAM serves with page-cache locality. v2 files (and v3 files decoded via
//! [`FrozenModel::decode`] on a byte slice) keep the copy path.

use std::path::Path;
use std::sync::Arc;

use uae_core::{Uae, UaeConfig};
use uae_data::FeatureSchema;
use uae_runtime::checkpoint::{ByteReader, ByteWriter, CheckpointError, TrainSnapshot};
use uae_runtime::UaeError;
use uae_tensor::{
    decode_params, load_params, save_params, DecodeError, Matrix, MmapRegion, Params,
};

pub(crate) const MAGIC: &[u8; 4] = b"UAEM";
/// Container version. v2 added the downstream-recommender variant (tag 2 in
/// the variant byte, decoded by
/// [`FrozenRecommender`](crate::FrozenRecommender)); v3 added the
/// hashed-embedding config words and the memory-mappable param arena.
/// Readers accept both; writers emit v3 (see [`FrozenModel::encode_v2`]
/// for the legacy layout).
pub(crate) const VERSION: u32 = 3;
pub(crate) const VERSION_V2: u32 = 2;

/// Variant byte: 0 = sequential UAE, 1 = local SAR, 2 = downstream
/// recommender (see [`crate::FrozenRecommender`]).
pub(crate) const VARIANT_SEQUENTIAL: u8 = 0;
pub(crate) const VARIANT_LOCAL: u8 = 1;
pub(crate) const VARIANT_RECOMMENDER: u8 = 2;

/// Encodes a [`FeatureSchema`] (shared by every artifact variant).
pub(crate) fn put_schema(w: &mut ByteWriter, schema: &FeatureSchema) {
    w.put_u32(schema.cat_cardinalities.len() as u32);
    for (card, name) in schema.cat_cardinalities.iter().zip(&schema.cat_names) {
        w.put_u64(*card as u64);
        w.put_bytes(name.as_bytes());
    }
    w.put_u32(schema.dense_names.len() as u32);
    for name in &schema.dense_names {
        w.put_bytes(name.as_bytes());
    }
    w.put_u32(schema.feedback_types as u32);
}

/// Decodes a [`FeatureSchema`] written by [`put_schema`].
pub(crate) fn get_schema(r: &mut ByteReader) -> Result<FeatureSchema, CheckpointError> {
    let utf8 = |bytes: Vec<u8>| {
        String::from_utf8(bytes).map_err(|_| CheckpointError::Corrupt("non-utf8 name"))
    };
    let n_cat = r.get_u32()? as usize;
    let mut cat_cardinalities = Vec::with_capacity(n_cat.min(1 << 16));
    let mut cat_names = Vec::with_capacity(n_cat.min(1 << 16));
    for _ in 0..n_cat {
        cat_cardinalities.push(r.get_u64()? as usize);
        cat_names.push(utf8(r.get_bytes()?)?);
    }
    let n_dense = r.get_u32()? as usize;
    let mut dense_names = Vec::with_capacity(n_dense.min(1 << 16));
    for _ in 0..n_dense {
        dense_names.push(utf8(r.get_bytes()?)?);
    }
    let feedback_types = r.get_u32()? as usize;
    Ok(FeatureSchema {
        cat_cardinalities,
        cat_names,
        dense_names,
        feedback_types,
    })
}

/// Checks the leading magic + version words, returning the reader positioned
/// at the variant byte plus the accepted container version (2 or 3).
pub(crate) fn check_header(bytes: &[u8]) -> Result<(ByteReader<'_>, u32), UaeError> {
    let mut r = ByteReader::new(bytes);
    let magic = r.get_bytes().map_err(UaeError::Checkpoint)?;
    if magic != MAGIC {
        return Err(UaeError::Checkpoint(CheckpointError::BadMagic));
    }
    let version = r.get_u32().map_err(UaeError::Checkpoint)?;
    if version != VERSION_V2 && version != VERSION {
        return Err(UaeError::Checkpoint(CheckpointError::BadVersion(version)));
    }
    Ok((r, version))
}

/// Writes `bytes` to `path` atomically (sibling `.tmp` + rename, same
/// crash-safety contract as `.uaec` checkpoints).
pub(crate) fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), UaeError> {
    use std::io::Write as _;
    let tmp = path.with_extension("tmp");
    let io_err = |e: std::io::Error| UaeError::Checkpoint(CheckpointError::Io(e.to_string()));
    {
        let mut f = std::fs::File::create(&tmp).map_err(io_err)?;
        f.write_all(bytes).map_err(io_err)?;
        f.sync_all().map_err(io_err)?;
    }
    std::fs::rename(&tmp, path).map_err(io_err)?;
    Ok(())
}

/// Reads the raw bytes of an artifact file.
pub(crate) fn read_file(path: &Path) -> Result<Vec<u8>, UaeError> {
    use std::io::Read as _;
    let io_err = |e: std::io::Error| UaeError::Checkpoint(CheckpointError::Io(e.to_string()));
    let mut bytes = Vec::new();
    std::fs::File::open(path)
        .map_err(io_err)?
        .read_to_end(&mut bytes)
        .map_err(io_err)?;
    Ok(bytes)
}

/// One parameter's location inside a mapped v3 arena (absolute file offset).
#[derive(Debug, Clone)]
struct MappedEntry {
    name: String,
    rows: usize,
    cols: usize,
    offset: usize,
}

/// The zero-copy view behind [`FrozenModel::open`]: the whole-file mapping
/// plus each parameter's validated (name, shape, offset) triple. Weight
/// matrices built from this point straight into the page cache.
#[derive(Debug, Clone)]
pub struct MappedParams {
    region: Arc<MmapRegion>,
    g: Vec<MappedEntry>,
    h: Vec<MappedEntry>,
    arena_len: usize,
}

impl MappedParams {
    /// Whether the region rides a real `mmap` (vs. the aligned heap
    /// fallback used on non-unix targets or when `mmap(2)` fails).
    pub fn is_mapped(&self) -> bool {
        self.region.is_mapped()
    }

    /// Arena length in bytes (the resident-set cost ceiling of the weights).
    pub fn arena_len(&self) -> usize {
        self.arena_len
    }
}

/// One raw parameter headed for a v3 arena: name, shape, LE `f32` bytes.
struct ArenaParam {
    name: String,
    rows: usize,
    cols: usize,
    data: Vec<u8>,
}

/// The decoded v3 header (everything before the arena). Entry offsets are
/// arena-relative, validated for alignment and bounds.
struct V3Header {
    sequential: bool,
    gamma: f32,
    schema: FeatureSchema,
    embed_dim: usize,
    gru_hidden: usize,
    mlp_hidden: Vec<usize>,
    hash_buckets: usize,
    hash_k: usize,
    g: Vec<MappedEntry>,
    h: Vec<MappedEntry>,
    extras: Vec<(String, Vec<u8>)>,
    arena_offset: usize,
    arena_len: usize,
}

/// Parses a v3 body (reader positioned at the variant byte) and validates
/// every arena coordinate against `total_len`, the file's byte length.
/// Misaligned or out-of-bounds offsets — the hostile inputs a mapped reader
/// must never dereference — are typed [`CheckpointError::Corrupt`] values.
fn parse_v3(r: &mut ByteReader, total_len: usize) -> Result<V3Header, CheckpointError> {
    let sequential = match r.get_u8()? {
        VARIANT_SEQUENTIAL => true,
        VARIANT_LOCAL => false,
        VARIANT_RECOMMENDER => {
            return Err(CheckpointError::Corrupt(
                "downstream-recommender artifact; decode via FrozenArtifact",
            ))
        }
        _ => return Err(CheckpointError::Corrupt("bad artifact-variant tag")),
    };
    let gamma = r.get_f32()?;
    let schema = get_schema(r)?;
    let embed_dim = r.get_u32()? as usize;
    let gru_hidden = r.get_u32()? as usize;
    let n_mlp = r.get_u32()? as usize;
    let mut mlp_hidden = Vec::with_capacity(n_mlp.min(1 << 10));
    for _ in 0..n_mlp {
        mlp_hidden.push(r.get_u32()? as usize);
    }
    let hash_buckets = r.get_u32()? as usize;
    let hash_k = r.get_u32()? as usize;
    let table = |r: &mut ByteReader| -> Result<Vec<MappedEntry>, CheckpointError> {
        let n = r.get_u32()? as usize;
        let mut out = Vec::with_capacity(n.min(1 << 12));
        for _ in 0..n {
            let name = String::from_utf8(r.get_bytes()?)
                .map_err(|_| CheckpointError::Corrupt("non-utf8 name"))?;
            let rows = r.get_u32()? as usize;
            let cols = r.get_u32()? as usize;
            let offset = r.get_u64()? as usize;
            out.push(MappedEntry {
                name,
                rows,
                cols,
                offset,
            });
        }
        Ok(out)
    };
    let g = table(r)?;
    let h = table(r)?;
    let n_extra = r.get_u32()? as usize;
    let mut extras = Vec::with_capacity(n_extra.min(1 << 10));
    for _ in 0..n_extra {
        let name = String::from_utf8(r.get_bytes()?)
            .map_err(|_| CheckpointError::Corrupt("non-utf8 name"))?;
        extras.push((name, r.get_bytes()?));
    }
    let arena_len = r.get_u64()? as usize;
    let arena_offset = r.get_u64()? as usize;
    if !arena_offset.is_multiple_of(16) {
        return Err(CheckpointError::Corrupt("arena offset not 16-byte aligned"));
    }
    let arena_end = arena_offset
        .checked_add(arena_len)
        .ok_or(CheckpointError::Corrupt("arena extent overflows"))?;
    if arena_end > total_len {
        return Err(CheckpointError::Corrupt("arena extends past end of file"));
    }
    for e in g.iter().chain(h.iter()) {
        if !e.offset.is_multiple_of(16) {
            return Err(CheckpointError::Corrupt("param offset not 16-byte aligned"));
        }
        let bytes = e
            .rows
            .checked_mul(e.cols)
            .and_then(|n| n.checked_mul(4))
            .ok_or(CheckpointError::Corrupt("param size overflows"))?;
        let end = e
            .offset
            .checked_add(bytes)
            .ok_or(CheckpointError::Corrupt("param extent overflows"))?;
        if end > arena_len {
            return Err(CheckpointError::Corrupt("param extends past end of arena"));
        }
    }
    Ok(V3Header {
        sequential,
        gamma,
        schema,
        embed_dim,
        gru_hidden,
        mlp_hidden,
        hash_buckets,
        hash_k,
        g,
        h,
        extras,
        arena_offset,
        arena_len,
    })
}

/// Rebuilds a byte-identical `uae_tensor::serialize` "UAEP" blob from v3
/// arena entries — the copy path for `decode()` on a v3 byte slice, so v2
/// and v3 decodes compare equal and `build()` shares one loader.
fn blob_from_entries(bytes: &[u8], arena_offset: usize, entries: &[MappedEntry]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(b"UAEP");
    out.extend_from_slice(&1u32.to_le_bytes());
    out.extend_from_slice(&(entries.len() as u32).to_le_bytes());
    for e in entries {
        out.extend_from_slice(&(e.name.len() as u32).to_le_bytes());
        out.extend_from_slice(e.name.as_bytes());
        out.extend_from_slice(&(e.rows as u32).to_le_bytes());
        out.extend_from_slice(&(e.cols as u32).to_le_bytes());
        let start = arena_offset + e.offset;
        out.extend_from_slice(&bytes[start..start + e.rows * e.cols * 4]);
    }
    out
}

/// Points each parameter of `params` at its mapped arena slice. Validates
/// every entry positionally by name and shape (the same contract as
/// [`load_params`]) before touching any value, then swaps in zero-copy
/// [`Matrix::from_mmap`] views and zeroes gradients.
fn load_mapped(
    params: &mut Params,
    region: &Arc<MmapRegion>,
    entries: &[MappedEntry],
) -> Result<(), UaeError> {
    if entries.len() != params.count() {
        return Err(UaeError::Decode(DecodeError::CountMismatch {
            expected: params.count(),
            found: entries.len(),
        }));
    }
    let ids: Vec<_> = params.ids().collect();
    for (id, e) in ids.iter().zip(entries) {
        let expected = params.value(*id).shape();
        if (e.rows, e.cols) != expected || params.name(*id) != e.name {
            return Err(UaeError::Decode(DecodeError::ShapeMismatch {
                name: e.name.clone(),
                expected,
                found: (e.rows, e.cols),
            }));
        }
    }
    for (id, e) in ids.iter().zip(entries) {
        let m = Matrix::from_mmap(Arc::clone(region), e.offset, e.rows, e.cols)
            .map_err(|msg| UaeError::Checkpoint(CheckpointError::Corrupt(msg)))?;
        *params.value_mut(*id) = m;
    }
    params.zero_grads();
    Ok(())
}

/// A decoded frozen model: the immutable ingredients of the serving path.
#[derive(Debug, Clone)]
pub struct FrozenModel {
    /// Feature schema the model was trained against (embedding tables and
    /// dense width are derived from it on rebuild).
    pub schema: FeatureSchema,
    /// `true` = sequential propensity head (UAE), `false` = local (SAR).
    pub sequential: bool,
    /// Eq. (19) reweighting exponent γ baked in at export time.
    pub gamma: f32,
    /// Embedding dimension of `g` (and the SAR head).
    pub embed_dim: usize,
    /// GRU₁ hidden width (GRU₂'s width is derived exactly as in
    /// [`Uae::new`]).
    pub gru_hidden: usize,
    /// MLP hidden widths shared by both heads.
    pub mlp_hidden: Vec<usize>,
    /// Hashed-embedding bucket cap (0 = dense tables). Architectural: the
    /// rebuilt model must bucket exactly as the trained one did.
    pub hash_buckets: usize,
    /// Hash functions per lookup when `hash_buckets > 0`.
    pub hash_k: usize,
    /// Θ_g as a UAEP blob (empty when [`FrozenModel::open`] mapped the file
    /// — the weights then live in `mapped`, not on the heap).
    pub params_g: Vec<u8>,
    /// Θ_h as a UAEP blob (empty when mapped; see `params_g`).
    pub params_h: Vec<u8>,
    /// Named extra blobs (e.g. a downstream recommender's UAEP arena).
    pub extras: Vec<(String, Vec<u8>)>,
    /// Zero-copy arena view set by [`FrozenModel::open`] on a v3 file.
    /// [`FrozenModel::build`] prefers it over the blob path.
    pub(crate) mapped: Option<MappedParams>,
}

impl PartialEq for FrozenModel {
    /// Compares the decoded contents; the `mapped` transport (zero-copy vs
    /// heap blobs) is deliberately ignored.
    fn eq(&self, other: &Self) -> bool {
        self.schema == other.schema
            && self.sequential == other.sequential
            && self.gamma == other.gamma
            && self.embed_dim == other.embed_dim
            && self.gru_hidden == other.gru_hidden
            && self.mlp_hidden == other.mlp_hidden
            && self.hash_buckets == other.hash_buckets
            && self.hash_k == other.hash_k
            && self.params_g == other.params_g
            && self.params_h == other.params_h
            && self.extras == other.extras
    }
}

impl FrozenModel {
    /// Freezes a trained model: snapshots both arenas and the architecture
    /// hyper-parameters needed to rebuild it.
    pub fn from_uae(uae: &Uae, schema: &FeatureSchema, gamma: f32) -> FrozenModel {
        let cfg = uae.config();
        FrozenModel {
            schema: schema.clone(),
            sequential: uae.is_sequential(),
            gamma,
            embed_dim: cfg.embed_dim,
            gru_hidden: cfg.gru_hidden,
            mlp_hidden: cfg.mlp_hidden.clone(),
            hash_buckets: cfg.hash_buckets,
            hash_k: cfg.hash_k,
            params_g: save_params(uae.attention_params()),
            params_h: save_params(uae.propensity_params()),
            extras: Vec::new(),
            mapped: None,
        }
    }

    /// Derives a frozen model from a `.uaec` training checkpoint written by
    /// [`Uae::fit_supervised`] (arena 0 = Θ_g, arena 1 = Θ_h). The
    /// architecture cannot be recovered from the checkpoint alone, so the
    /// caller supplies the schema and config it trained with.
    pub fn from_checkpoint(
        snap: &TrainSnapshot,
        schema: &FeatureSchema,
        cfg: &UaeConfig,
        sequential: bool,
        gamma: f32,
    ) -> Result<FrozenModel, UaeError> {
        let arena = |i: usize| -> Result<Vec<u8>, UaeError> {
            snap.arenas
                .get(i)
                .cloned()
                .ok_or(UaeError::Checkpoint(CheckpointError::Corrupt(
                    "checkpoint is missing a parameter arena",
                )))
        };
        Ok(FrozenModel {
            schema: schema.clone(),
            sequential,
            gamma,
            embed_dim: cfg.embed_dim,
            gru_hidden: cfg.gru_hidden,
            mlp_hidden: cfg.mlp_hidden.clone(),
            hash_buckets: cfg.hash_buckets,
            hash_k: cfg.hash_k,
            params_g: arena(0)?,
            params_h: arena(1)?,
            extras: Vec::new(),
            mapped: None,
        })
    }

    /// Attaches a named extra blob (e.g. a downstream recommender arena).
    pub fn with_extra(mut self, name: impl Into<String>, blob: Vec<u8>) -> FrozenModel {
        self.extras.push((name.into(), blob));
        self
    }

    /// Looks up an extra blob by name.
    pub fn extra(&self, name: &str) -> Option<&[u8]> {
        self.extras
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, b)| b.as_slice())
    }

    /// Rebuilds the [`Uae`] model and loads both arenas into it. The UAEP
    /// loader validates every tensor name and shape against the freshly
    /// built architecture, so a snapshot exported from a different schema
    /// or width fails with a typed [`UaeError::Decode`].
    pub fn build(&self) -> Result<Uae, UaeError> {
        // Plausibility gate before any allocation trusts the decoded
        // architecture: a bit-flipped cardinality or width field can imply
        // terabyte-scale embedding tables while the stored arenas stay
        // small. A conservative lower bound on the implied parameter count
        // must fit (with generous slack) in the arena bytes actually
        // present, or the artifact is corrupt.
        let e = self.embed_dim as u64;
        let h = self.gru_hidden as u64;
        // Hashed models cap every table at hash_buckets rows, so the
        // implied count must use the capped rows or huge-cardinality
        // hashed artifacts would trip the gate.
        let cat_rows: u64 = self
            .schema
            .cat_cardinalities
            .iter()
            .map(|&c| {
                if self.hash_buckets > 0 {
                    c.min(self.hash_buckets.max(1)) as u64
                } else {
                    c as u64
                }
            })
            .fold(0u64, |acc, r| acc.saturating_add(r));
        let mut implied = cat_rows.saturating_mul(e);
        implied =
            implied.saturating_add(3u64.saturating_mul(h).saturating_mul(h.saturating_add(e)));
        let mut prev = h;
        for &m in &self.mlp_hidden {
            implied = implied.saturating_add(prev.saturating_mul(m as u64));
            prev = m as u64;
        }
        let arena_bytes = match &self.mapped {
            Some(m) => m.arena_len as u64,
            None => (self.params_g.len() + self.params_h.len()) as u64,
        };
        if implied.saturating_mul(4) > arena_bytes.saturating_mul(8).saturating_add(1 << 16) {
            return Err(UaeError::Checkpoint(CheckpointError::Corrupt(
                "implausible architecture: implied parameter count exceeds the stored arenas",
            )));
        }
        let cfg = UaeConfig {
            embed_dim: self.embed_dim,
            gru_hidden: self.gru_hidden,
            mlp_hidden: self.mlp_hidden.clone(),
            hash_buckets: self.hash_buckets,
            hash_k: self.hash_k,
            ..UaeConfig::default()
        };
        // The seed only affects initial values, which the load overwrites.
        let mut uae = if self.sequential {
            Uae::new(&self.schema, cfg)
        } else {
            Uae::new_sar(&self.schema, cfg)
        };
        match &self.mapped {
            Some(m) => {
                // Zero-copy: point each weight matrix at the mapped arena.
                load_mapped(uae.attention_params_mut(), &m.region, &m.g)?;
                load_mapped(uae.propensity_params_mut(), &m.region, &m.h)?;
            }
            None => {
                load_params(uae.attention_params_mut(), &self.params_g)
                    .map_err(UaeError::Decode)?;
                load_params(uae.propensity_params_mut(), &self.params_h)
                    .map_err(UaeError::Decode)?;
            }
        }
        Ok(uae)
    }

    /// The per-arena raw parameters for a v3 encode, from whichever
    /// transport this snapshot carries (heap blobs or a mapped region).
    /// `None` when the blobs don't parse as UAEP — `encode` then falls back
    /// to the opaque-blob v2 layout rather than failing.
    fn arena_params(&self) -> Option<(Vec<ArenaParam>, Vec<ArenaParam>)> {
        if let Some(m) = &self.mapped {
            let bytes = m.region.bytes();
            let from_entries = |entries: &[MappedEntry]| {
                entries
                    .iter()
                    .map(|e| ArenaParam {
                        name: e.name.clone(),
                        rows: e.rows,
                        cols: e.cols,
                        data: bytes[e.offset..e.offset + e.rows * e.cols * 4].to_vec(),
                    })
                    .collect()
            };
            return Some((from_entries(&m.g), from_entries(&m.h)));
        }
        let from_blob = |blob: &[u8]| -> Option<Vec<ArenaParam>> {
            Some(
                decode_params(blob)
                    .ok()?
                    .into_iter()
                    .map(|p| {
                        let mut data = Vec::with_capacity(p.value.data().len() * 4);
                        for &x in p.value.data() {
                            data.extend_from_slice(&x.to_le_bytes());
                        }
                        ArenaParam {
                            name: p.name,
                            rows: p.value.rows(),
                            cols: p.value.cols(),
                            data,
                        }
                    })
                    .collect(),
            )
        };
        Some((from_blob(&self.params_g)?, from_blob(&self.params_h)?))
    }

    /// Serializes to `.uaem` bytes in the v3 arena layout: header with
    /// per-parameter (name, shape, 16-byte-aligned relative offset), then a
    /// zero-padded gap to a 16-byte-aligned absolute arena offset, then the
    /// raw little-endian `f32` arena. Snapshots whose blobs are not UAEP
    /// (hand-built test fixtures) fall back to [`FrozenModel::encode_v2`].
    pub fn encode(&self) -> Vec<u8> {
        let Some((g, h)) = self.arena_params() else {
            return self.encode_v2();
        };
        // Lay out the arena: each parameter's raw bytes at a 16-byte-aligned
        // relative offset.
        let mut arena: Vec<u8> = Vec::new();
        let place = |arena: &mut Vec<u8>, p: &ArenaParam| -> u64 {
            let pad = (16 - arena.len() % 16) % 16;
            arena.extend(std::iter::repeat_n(0u8, pad));
            let off = arena.len() as u64;
            arena.extend_from_slice(&p.data);
            off
        };
        let g_offs: Vec<u64> = g.iter().map(|p| place(&mut arena, p)).collect();
        let h_offs: Vec<u64> = h.iter().map(|p| place(&mut arena, p)).collect();
        let mut w = ByteWriter::new();
        w.put_bytes(MAGIC.as_slice());
        w.put_u32(VERSION);
        w.put_u8(if self.sequential {
            VARIANT_SEQUENTIAL
        } else {
            VARIANT_LOCAL
        });
        w.put_f32(self.gamma);
        put_schema(&mut w, &self.schema);
        // Architecture.
        w.put_u32(self.embed_dim as u32);
        w.put_u32(self.gru_hidden as u32);
        w.put_u32(self.mlp_hidden.len() as u32);
        for &hh in &self.mlp_hidden {
            w.put_u32(hh as u32);
        }
        w.put_u32(self.hash_buckets as u32);
        w.put_u32(self.hash_k as u32);
        // Parameter tables: names, shapes, arena-relative offsets.
        let put_table = |w: &mut ByteWriter, ps: &[ArenaParam], offs: &[u64]| {
            w.put_u32(ps.len() as u32);
            for (p, &off) in ps.iter().zip(offs) {
                w.put_bytes(p.name.as_bytes());
                w.put_u32(p.rows as u32);
                w.put_u32(p.cols as u32);
                w.put_u64(off);
            }
        };
        put_table(&mut w, &g, &g_offs);
        put_table(&mut w, &h, &h_offs);
        w.put_u32(self.extras.len() as u32);
        for (name, blob) in &self.extras {
            w.put_bytes(name.as_bytes());
            w.put_bytes(blob);
        }
        w.put_u64(arena.len() as u64);
        // Absolute arena offset, patched below once the header length is
        // known (ByteWriter has no position accessor). Writing it explicitly
        // — rather than deriving it as len − arena_len — means a truncated
        // tail can never silently shift the arena.
        w.put_u64(0);
        let mut bytes = w.into_bytes();
        let hlen = bytes.len();
        let pad = (16 - hlen % 16) % 16;
        let arena_offset = (hlen + pad) as u64;
        bytes[hlen - 8..hlen].copy_from_slice(&arena_offset.to_le_bytes());
        bytes.extend(std::iter::repeat_n(0u8, pad));
        bytes.extend_from_slice(&arena);
        bytes
    }

    /// Serializes in the legacy v2 layout (parameters as opaque embedded
    /// blobs, no arena). Kept for downgrade paths and as the `encode`
    /// fallback when the blobs are not UAEP; v2 loses the hash config
    /// words, so hashed models must ship as v3.
    pub fn encode_v2(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_bytes(MAGIC.as_slice());
        w.put_u32(VERSION_V2);
        w.put_u8(if self.sequential {
            VARIANT_SEQUENTIAL
        } else {
            VARIANT_LOCAL
        });
        w.put_f32(self.gamma);
        put_schema(&mut w, &self.schema);
        // Architecture.
        w.put_u32(self.embed_dim as u32);
        w.put_u32(self.gru_hidden as u32);
        w.put_u32(self.mlp_hidden.len() as u32);
        for &h in &self.mlp_hidden {
            w.put_u32(h as u32);
        }
        // Arenas and extras.
        w.put_bytes(&self.params_g);
        w.put_bytes(&self.params_h);
        w.put_u32(self.extras.len() as u32);
        for (name, blob) in &self.extras {
            w.put_bytes(name.as_bytes());
            w.put_bytes(blob);
        }
        w.into_bytes()
    }

    /// Decodes `.uaem` bytes. Container-level damage is a typed
    /// [`UaeError::Checkpoint`]. A downstream-recommender artifact (variant
    /// 2) is rejected here — sniff with
    /// [`FrozenArtifact::read_from`](crate::FrozenArtifact::read_from) when
    /// the variant is not known up front.
    pub fn decode(bytes: &[u8]) -> Result<FrozenModel, UaeError> {
        let (mut r, version) = check_header(bytes)?;
        if version == VERSION_V2 {
            return FrozenModel::decode_v2_body(&mut r).map_err(UaeError::Checkpoint);
        }
        let hd = parse_v3(&mut r, bytes.len()).map_err(UaeError::Checkpoint)?;
        // Copy path: rebuild the UAEP blobs from the arena so a v3 decode
        // compares equal to the equivalent v2 decode.
        let params_g = blob_from_entries(bytes, hd.arena_offset, &hd.g);
        let params_h = blob_from_entries(bytes, hd.arena_offset, &hd.h);
        Ok(FrozenModel {
            schema: hd.schema,
            sequential: hd.sequential,
            gamma: hd.gamma,
            embed_dim: hd.embed_dim,
            gru_hidden: hd.gru_hidden,
            mlp_hidden: hd.mlp_hidden,
            hash_buckets: hd.hash_buckets,
            hash_k: hd.hash_k,
            params_g,
            params_h,
            extras: hd.extras,
            mapped: None,
        })
    }

    /// Decodes a v2 body (reader positioned at the variant byte). v2
    /// predates hashed embeddings, so the hash config is dense (0 buckets).
    fn decode_v2_body(r: &mut ByteReader) -> Result<FrozenModel, CheckpointError> {
        let sequential = match r.get_u8()? {
            VARIANT_SEQUENTIAL => true,
            VARIANT_LOCAL => false,
            VARIANT_RECOMMENDER => {
                return Err(CheckpointError::Corrupt(
                    "downstream-recommender artifact; decode via FrozenArtifact",
                ))
            }
            _ => return Err(CheckpointError::Corrupt("bad artifact-variant tag")),
        };
        let gamma = r.get_f32()?;
        let schema = get_schema(r)?;
        let embed_dim = r.get_u32()? as usize;
        let gru_hidden = r.get_u32()? as usize;
        let n_mlp = r.get_u32()? as usize;
        let mut mlp_hidden = Vec::with_capacity(n_mlp.min(1 << 10));
        for _ in 0..n_mlp {
            mlp_hidden.push(r.get_u32()? as usize);
        }
        let params_g = r.get_bytes()?;
        let params_h = r.get_bytes()?;
        let n_extra = r.get_u32()? as usize;
        let mut extras = Vec::with_capacity(n_extra.min(1 << 10));
        for _ in 0..n_extra {
            let name = String::from_utf8(r.get_bytes()?)
                .map_err(|_| CheckpointError::Corrupt("non-utf8 name"))?;
            extras.push((name, r.get_bytes()?));
        }
        Ok(FrozenModel {
            schema,
            sequential,
            gamma,
            embed_dim,
            gru_hidden,
            mlp_hidden,
            hash_buckets: 0,
            hash_k: 2,
            params_g,
            params_h,
            extras,
            mapped: None,
        })
    }

    /// Memory-maps a `.uaem` file and decodes it zero-copy: on a v3 file
    /// the header is parsed but the parameter arena is *not* read — the
    /// returned snapshot's [`FrozenModel::build`] points each weight
    /// [`Matrix`] straight at the mapping, so cold-start cost is the header
    /// parse plus page faults on first touch, independent of model size.
    /// A v2 file (no arena layout) transparently falls back to the copy
    /// decode of the mapped bytes.
    ///
    /// ```
    /// use uae_core::{Uae, UaeConfig};
    /// use uae_data::{generate, SimConfig};
    /// use uae_serve::FrozenModel;
    ///
    /// let ds = generate(&SimConfig::tiny(), 5);
    /// let cfg = UaeConfig { gru_hidden: 8, mlp_hidden: vec![8], ..UaeConfig::default() };
    /// let uae = Uae::new(&ds.schema, cfg);
    ///
    /// let dir = std::env::temp_dir().join(format!("uaem_doc_{}", std::process::id()));
    /// std::fs::create_dir_all(&dir).unwrap();
    /// let path = dir.join("model.uaem");
    /// FrozenModel::from_uae(&uae, &ds.schema, 15.0).write_to(&path)?;
    ///
    /// let frozen = FrozenModel::open(&path)?; // weights stay in the page cache
    /// let rebuilt = frozen.build()?;          // matrices point into the mapping
    /// assert!(rebuilt.is_sequential());
    /// # std::fs::remove_dir_all(&dir).unwrap();
    /// # Ok::<(), uae_runtime::UaeError>(())
    /// ```
    pub fn open(path: &Path) -> Result<FrozenModel, UaeError> {
        let region = MmapRegion::map(path)
            .map_err(|e| UaeError::Checkpoint(CheckpointError::Io(e.to_string())))?;
        let region = Arc::new(region);
        let (mut r, version) = check_header(region.bytes())?;
        if version == VERSION_V2 {
            return FrozenModel::decode_v2_body(&mut r).map_err(UaeError::Checkpoint);
        }
        let total = region.len();
        let hd = parse_v3(&mut r, total).map_err(UaeError::Checkpoint)?;
        // Rebase entries from arena-relative to absolute file offsets; the
        // arena offset is 16-byte aligned, so alignment survives.
        let rebase = |mut es: Vec<MappedEntry>| {
            for e in &mut es {
                e.offset += hd.arena_offset;
            }
            es
        };
        Ok(FrozenModel {
            schema: hd.schema,
            sequential: hd.sequential,
            gamma: hd.gamma,
            embed_dim: hd.embed_dim,
            gru_hidden: hd.gru_hidden,
            mlp_hidden: hd.mlp_hidden,
            hash_buckets: hd.hash_buckets,
            hash_k: hd.hash_k,
            params_g: Vec::new(),
            params_h: Vec::new(),
            extras: hd.extras,
            mapped: Some(MappedParams {
                region,
                g: rebase(hd.g),
                h: rebase(hd.h),
                arena_len: hd.arena_len,
            }),
        })
    }

    /// The zero-copy view when this snapshot was produced by
    /// [`FrozenModel::open`] on a v3 file (`None` on the copy paths).
    pub fn mapped(&self) -> Option<&MappedParams> {
        self.mapped.as_ref()
    }

    /// Writes the snapshot to `path` atomically (sibling `.tmp` + rename,
    /// same crash-safety contract as `.uaec` checkpoints).
    pub fn write_to(&self, path: &Path) -> Result<(), UaeError> {
        write_atomic(path, &self.encode())
    }

    /// Reads and decodes a snapshot from `path`.
    pub fn read_from(path: &Path) -> Result<FrozenModel, UaeError> {
        FrozenModel::decode(&read_file(path)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uae_data::{generate, SimConfig};

    fn tiny_model() -> (uae_data::Dataset, Uae) {
        let ds = generate(&SimConfig::tiny(), 5);
        let cfg = UaeConfig {
            gru_hidden: 8,
            mlp_hidden: vec![8],
            ..UaeConfig::default()
        };
        let uae = Uae::new(&ds.schema, cfg);
        (ds, uae)
    }

    #[test]
    fn encode_decode_round_trips() {
        let (ds, uae) = tiny_model();
        let frozen = FrozenModel::from_uae(&uae, &ds.schema, 15.0)
            .with_extra("downstream.dcnv2", vec![1, 2, 3]);
        let decoded = FrozenModel::decode(&frozen.encode()).unwrap();
        assert_eq!(decoded, frozen);
        assert_eq!(decoded.extra("downstream.dcnv2"), Some(&[1u8, 2, 3][..]));
        assert_eq!(decoded.extra("missing"), None);
    }

    #[test]
    fn build_restores_exact_parameter_values() {
        let (ds, uae) = tiny_model();
        let frozen = FrozenModel::from_uae(&uae, &ds.schema, 15.0);
        let rebuilt = frozen.build().unwrap();
        assert_eq!(
            save_params(rebuilt.attention_params()),
            save_params(uae.attention_params())
        );
        assert_eq!(
            save_params(rebuilt.propensity_params()),
            save_params(uae.propensity_params())
        );
    }

    #[test]
    fn truncated_snapshot_is_a_typed_checkpoint_error() {
        let (ds, uae) = tiny_model();
        let bytes = FrozenModel::from_uae(&uae, &ds.schema, 15.0).encode();
        for cut in [0, 4, 16, bytes.len() / 2, bytes.len() - 1] {
            match FrozenModel::decode(&bytes[..cut]) {
                Err(UaeError::Checkpoint(_)) => {}
                other => panic!("cut={cut}: expected Checkpoint error, got {other:?}"),
            }
        }
    }

    #[test]
    fn bad_magic_and_version_are_rejected() {
        let (ds, uae) = tiny_model();
        let frozen = FrozenModel::from_uae(&uae, &ds.schema, 15.0);
        let mut bytes = frozen.encode();
        // put_bytes prefixes an 8-byte length, so the magic starts at 8.
        bytes[8] = b'X';
        assert_eq!(
            FrozenModel::decode(&bytes),
            Err(UaeError::Checkpoint(CheckpointError::BadMagic))
        );
        let mut bytes = frozen.encode();
        bytes[12] = 99;
        assert!(matches!(
            FrozenModel::decode(&bytes),
            Err(UaeError::Checkpoint(CheckpointError::BadVersion(_)))
        ));
    }

    #[test]
    fn mismatched_schema_fails_with_decode_error() {
        let (ds, uae) = tiny_model();
        let mut frozen = FrozenModel::from_uae(&uae, &ds.schema, 15.0);
        // Grow one embedding table's cardinality: the rebuilt arena expects
        // a bigger tensor than the blob carries.
        frozen.schema.cat_cardinalities[0] += 7;
        match frozen.build() {
            Err(UaeError::Decode(e)) => drop(e),
            Err(other) => panic!("expected Decode error, got {other:?}"),
            Ok(_) => panic!("expected Decode error, got Ok"),
        }
    }

    #[test]
    fn file_round_trip_is_atomic_and_exact() {
        let (ds, uae) = tiny_model();
        let frozen = FrozenModel::from_uae(&uae, &ds.schema, 12.5);
        let dir = std::env::temp_dir().join(format!("uaem_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.uaem");
        frozen.write_to(&path).unwrap();
        assert!(!path.with_extension("tmp").exists(), "tmp file left behind");
        let read = FrozenModel::read_from(&path).unwrap();
        assert_eq!(read, frozen);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    fn scratch_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("uaem_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn v2_and_v3_decodes_are_equal_and_score_identically() {
        let (ds, uae) = tiny_model();
        let frozen = FrozenModel::from_uae(&uae, &ds.schema, 15.0);
        let v3 = FrozenModel::decode(&frozen.encode()).unwrap();
        let v2 = FrozenModel::decode(&frozen.encode_v2()).unwrap();
        assert_eq!(v3, v2);
        // The rebuilt parameter arenas are bit-identical regardless of the
        // container version that carried them.
        let a = v3.build().unwrap();
        let b = v2.build().unwrap();
        assert_eq!(
            save_params(a.attention_params()),
            save_params(b.attention_params())
        );
        assert_eq!(
            save_params(a.propensity_params()),
            save_params(b.propensity_params())
        );
    }

    #[test]
    fn open_maps_v3_and_builds_bit_identical_params() {
        let (ds, uae) = tiny_model();
        let frozen = FrozenModel::from_uae(&uae, &ds.schema, 15.0);
        let dir = scratch_dir("open");
        let path = dir.join("model.uaem");
        frozen.write_to(&path).unwrap();
        let mapped = FrozenModel::open(&path).unwrap();
        let mp = mapped.mapped().expect("v3 open should map the arena");
        assert!(mp.arena_len() > 0);
        assert!(mapped.params_g.is_empty() && mapped.params_h.is_empty());
        // Decoded contents compare equal to the heap decode (PartialEq
        // ignores the transport, and blobs are rebuilt only on the copy
        // path, so compare the built parameters instead).
        let built = mapped.build().unwrap();
        assert_eq!(
            save_params(built.attention_params()),
            save_params(uae.attention_params())
        );
        assert_eq!(
            save_params(built.propensity_params()),
            save_params(uae.propensity_params())
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_falls_back_to_copy_decode_on_v2_files() {
        let (ds, uae) = tiny_model();
        let frozen = FrozenModel::from_uae(&uae, &ds.schema, 15.0);
        let dir = scratch_dir("openv2");
        let path = dir.join("model_v2.uaem");
        write_atomic(&path, &frozen.encode_v2()).unwrap();
        let opened = FrozenModel::open(&path).unwrap();
        assert!(opened.mapped().is_none());
        assert_eq!(opened, frozen);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn hash_config_survives_the_v3_round_trip() {
        let ds = generate(&SimConfig::tiny(), 5);
        let cfg = UaeConfig {
            gru_hidden: 8,
            mlp_hidden: vec![8],
            hash_buckets: 32,
            hash_k: 2,
            ..UaeConfig::default()
        };
        let uae = Uae::new(&ds.schema, cfg);
        let frozen = FrozenModel::from_uae(&uae, &ds.schema, 15.0);
        assert_eq!(frozen.hash_buckets, 32);
        let decoded = FrozenModel::decode(&frozen.encode()).unwrap();
        assert_eq!(decoded.hash_buckets, 32);
        assert_eq!(decoded.hash_k, 2);
        let rebuilt = decoded.build().unwrap();
        assert_eq!(
            save_params(rebuilt.attention_params()),
            save_params(uae.attention_params())
        );
    }

    /// Corrupts a v3 header field located by a byte pattern and asserts the
    /// decoder answers with a typed checkpoint error, not a panic or a
    /// mis-read. The arena_offset u64 sits in the last 16 header bytes
    /// (arena_len then arena_offset), directly before the alignment pad.
    #[test]
    fn hostile_v3_offsets_are_typed_errors() {
        let (ds, uae) = tiny_model();
        let bytes = FrozenModel::from_uae(&uae, &ds.schema, 15.0).encode();
        // Locate arena_offset: it's the only 16-aligned value v such that
        // decode succeeds — recover it by decoding once.
        let decoded = FrozenModel::decode(&bytes).unwrap();
        drop(decoded);
        // Find the header length from the stored arena_offset field: scan
        // for the trailing pattern by brute force — the arena offset is
        // stored at (arena_offset - pad - 8), pad < 16.
        let mut patched = None;
        for h in (bytes.len().saturating_sub(16 * 4096)..bytes.len()).rev() {
            if h < 8 {
                break;
            }
            let mut le = [0u8; 8];
            le.copy_from_slice(&bytes[h - 8..h]);
            let v = u64::from_le_bytes(le) as usize;
            if v.is_multiple_of(16) && v >= h && v <= bytes.len() && (v - h) < 16 {
                patched = Some((h, v));
                break;
            }
        }
        let (field_end, _arena_offset) = patched.expect("arena_offset field not found");
        // Misaligned arena offset.
        let mut bad = bytes.clone();
        bad[field_end - 8..field_end].copy_from_slice(&(8u64).to_le_bytes());
        assert!(matches!(
            FrozenModel::decode(&bad),
            Err(UaeError::Checkpoint(CheckpointError::Corrupt(
                "arena offset not 16-byte aligned"
            )))
        ));
        // Out-of-bounds arena offset (aligned but past the file).
        let oob = ((bytes.len() + 16) / 16 * 16 + 16) as u64;
        let mut bad = bytes.clone();
        bad[field_end - 8..field_end].copy_from_slice(&oob.to_le_bytes());
        assert!(matches!(
            FrozenModel::decode(&bad),
            Err(UaeError::Checkpoint(CheckpointError::Corrupt(
                "arena extends past end of file"
            )))
        ));
        // Truncated arena: cut the tail so the arena no longer fits.
        let cut = &bytes[..bytes.len() - 8];
        assert!(matches!(
            FrozenModel::decode(cut),
            Err(UaeError::Checkpoint(CheckpointError::Corrupt(
                "arena extends past end of file"
            )))
        ));
    }
}
