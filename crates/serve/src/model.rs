//! The frozen model snapshot: a compact, read-only `.uaem` container.
//!
//! A `.uaem` file holds everything needed to reconstruct a trained [`Uae`]
//! for inference — the feature schema, the architecture hyper-parameters,
//! the propensity-head variant, the Eq. (19) reweighting exponent γ, and
//! the two parameter arenas (Θ_g / Θ_h) as `uae_tensor::serialize` "UAEP"
//! blobs — plus optional named extras (e.g. a downstream recommender's
//! arena). Unlike a `.uaec` training checkpoint it carries no optimizer
//! moments, RNG state, or trainer bookkeeping, so it is a fraction of the
//! size and loads straight into the tape-free serving path.
//!
//! The container reuses the checkpoint encoder/decoder idiom: a 4-byte
//! magic (`UAEM`), a version word, bounds-checked little-endian fields, and
//! atomic `.tmp` + rename writes. Failures surface through the existing
//! [`UaeError`] taxonomy: container-level damage (bad magic / version /
//! truncation) maps to [`UaeError::Checkpoint`], and a parameter blob that
//! does not match the rebuilt architecture maps to [`UaeError::Decode`]
//! with the offending tensor name and shapes.

use std::path::Path;

use uae_core::{Uae, UaeConfig};
use uae_data::FeatureSchema;
use uae_runtime::checkpoint::{ByteReader, ByteWriter, CheckpointError, TrainSnapshot};
use uae_runtime::UaeError;
use uae_tensor::{load_params, save_params};

pub(crate) const MAGIC: &[u8; 4] = b"UAEM";
/// Container version. v2 added the downstream-recommender variant (tag 2 in
/// the variant byte, decoded by
/// [`FrozenRecommender`](crate::FrozenRecommender)); UAE payloads are
/// unchanged from v1 apart from the version word.
pub(crate) const VERSION: u32 = 2;

/// Variant byte: 0 = sequential UAE, 1 = local SAR, 2 = downstream
/// recommender (see [`crate::FrozenRecommender`]).
pub(crate) const VARIANT_SEQUENTIAL: u8 = 0;
pub(crate) const VARIANT_LOCAL: u8 = 1;
pub(crate) const VARIANT_RECOMMENDER: u8 = 2;

/// Encodes a [`FeatureSchema`] (shared by every artifact variant).
pub(crate) fn put_schema(w: &mut ByteWriter, schema: &FeatureSchema) {
    w.put_u32(schema.cat_cardinalities.len() as u32);
    for (card, name) in schema.cat_cardinalities.iter().zip(&schema.cat_names) {
        w.put_u64(*card as u64);
        w.put_bytes(name.as_bytes());
    }
    w.put_u32(schema.dense_names.len() as u32);
    for name in &schema.dense_names {
        w.put_bytes(name.as_bytes());
    }
    w.put_u32(schema.feedback_types as u32);
}

/// Decodes a [`FeatureSchema`] written by [`put_schema`].
pub(crate) fn get_schema(r: &mut ByteReader) -> Result<FeatureSchema, CheckpointError> {
    let utf8 = |bytes: Vec<u8>| {
        String::from_utf8(bytes).map_err(|_| CheckpointError::Corrupt("non-utf8 name"))
    };
    let n_cat = r.get_u32()? as usize;
    let mut cat_cardinalities = Vec::with_capacity(n_cat.min(1 << 16));
    let mut cat_names = Vec::with_capacity(n_cat.min(1 << 16));
    for _ in 0..n_cat {
        cat_cardinalities.push(r.get_u64()? as usize);
        cat_names.push(utf8(r.get_bytes()?)?);
    }
    let n_dense = r.get_u32()? as usize;
    let mut dense_names = Vec::with_capacity(n_dense.min(1 << 16));
    for _ in 0..n_dense {
        dense_names.push(utf8(r.get_bytes()?)?);
    }
    let feedback_types = r.get_u32()? as usize;
    Ok(FeatureSchema {
        cat_cardinalities,
        cat_names,
        dense_names,
        feedback_types,
    })
}

/// Checks the leading magic + version words, returning the reader positioned
/// at the variant byte.
pub(crate) fn check_header<'a>(bytes: &'a [u8]) -> Result<ByteReader<'a>, UaeError> {
    let mut r = ByteReader::new(bytes);
    let magic = r.get_bytes().map_err(UaeError::Checkpoint)?;
    if magic != MAGIC {
        return Err(UaeError::Checkpoint(CheckpointError::BadMagic));
    }
    let version = r.get_u32().map_err(UaeError::Checkpoint)?;
    if version != VERSION {
        return Err(UaeError::Checkpoint(CheckpointError::BadVersion(version)));
    }
    Ok(r)
}

/// Writes `bytes` to `path` atomically (sibling `.tmp` + rename, same
/// crash-safety contract as `.uaec` checkpoints).
pub(crate) fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), UaeError> {
    use std::io::Write as _;
    let tmp = path.with_extension("tmp");
    let io_err = |e: std::io::Error| UaeError::Checkpoint(CheckpointError::Io(e.to_string()));
    {
        let mut f = std::fs::File::create(&tmp).map_err(io_err)?;
        f.write_all(bytes).map_err(io_err)?;
        f.sync_all().map_err(io_err)?;
    }
    std::fs::rename(&tmp, path).map_err(io_err)?;
    Ok(())
}

/// Reads the raw bytes of an artifact file.
pub(crate) fn read_file(path: &Path) -> Result<Vec<u8>, UaeError> {
    use std::io::Read as _;
    let io_err = |e: std::io::Error| UaeError::Checkpoint(CheckpointError::Io(e.to_string()));
    let mut bytes = Vec::new();
    std::fs::File::open(path)
        .map_err(io_err)?
        .read_to_end(&mut bytes)
        .map_err(io_err)?;
    Ok(bytes)
}

/// A decoded frozen model: the immutable ingredients of the serving path.
#[derive(Debug, Clone, PartialEq)]
pub struct FrozenModel {
    /// Feature schema the model was trained against (embedding tables and
    /// dense width are derived from it on rebuild).
    pub schema: FeatureSchema,
    /// `true` = sequential propensity head (UAE), `false` = local (SAR).
    pub sequential: bool,
    /// Eq. (19) reweighting exponent γ baked in at export time.
    pub gamma: f32,
    /// Embedding dimension of `g` (and the SAR head).
    pub embed_dim: usize,
    /// GRU₁ hidden width (GRU₂'s width is derived exactly as in
    /// [`Uae::new`]).
    pub gru_hidden: usize,
    /// MLP hidden widths shared by both heads.
    pub mlp_hidden: Vec<usize>,
    /// Θ_g as a UAEP blob.
    pub params_g: Vec<u8>,
    /// Θ_h as a UAEP blob.
    pub params_h: Vec<u8>,
    /// Named extra blobs (e.g. a downstream recommender's UAEP arena).
    pub extras: Vec<(String, Vec<u8>)>,
}

impl FrozenModel {
    /// Freezes a trained model: snapshots both arenas and the architecture
    /// hyper-parameters needed to rebuild it.
    pub fn from_uae(uae: &Uae, schema: &FeatureSchema, gamma: f32) -> FrozenModel {
        let cfg = uae.config();
        FrozenModel {
            schema: schema.clone(),
            sequential: uae.is_sequential(),
            gamma,
            embed_dim: cfg.embed_dim,
            gru_hidden: cfg.gru_hidden,
            mlp_hidden: cfg.mlp_hidden.clone(),
            params_g: save_params(uae.attention_params()),
            params_h: save_params(uae.propensity_params()),
            extras: Vec::new(),
        }
    }

    /// Derives a frozen model from a `.uaec` training checkpoint written by
    /// [`Uae::fit_supervised`] (arena 0 = Θ_g, arena 1 = Θ_h). The
    /// architecture cannot be recovered from the checkpoint alone, so the
    /// caller supplies the schema and config it trained with.
    pub fn from_checkpoint(
        snap: &TrainSnapshot,
        schema: &FeatureSchema,
        cfg: &UaeConfig,
        sequential: bool,
        gamma: f32,
    ) -> Result<FrozenModel, UaeError> {
        let arena = |i: usize| -> Result<Vec<u8>, UaeError> {
            snap.arenas
                .get(i)
                .cloned()
                .ok_or(UaeError::Checkpoint(CheckpointError::Corrupt(
                    "checkpoint is missing a parameter arena",
                )))
        };
        Ok(FrozenModel {
            schema: schema.clone(),
            sequential,
            gamma,
            embed_dim: cfg.embed_dim,
            gru_hidden: cfg.gru_hidden,
            mlp_hidden: cfg.mlp_hidden.clone(),
            params_g: arena(0)?,
            params_h: arena(1)?,
            extras: Vec::new(),
        })
    }

    /// Attaches a named extra blob (e.g. a downstream recommender arena).
    pub fn with_extra(mut self, name: impl Into<String>, blob: Vec<u8>) -> FrozenModel {
        self.extras.push((name.into(), blob));
        self
    }

    /// Looks up an extra blob by name.
    pub fn extra(&self, name: &str) -> Option<&[u8]> {
        self.extras
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, b)| b.as_slice())
    }

    /// Rebuilds the [`Uae`] model and loads both arenas into it. The UAEP
    /// loader validates every tensor name and shape against the freshly
    /// built architecture, so a snapshot exported from a different schema
    /// or width fails with a typed [`UaeError::Decode`].
    pub fn build(&self) -> Result<Uae, UaeError> {
        // Plausibility gate before any allocation trusts the decoded
        // architecture: a bit-flipped cardinality or width field can imply
        // terabyte-scale embedding tables while the stored arenas stay
        // small. A conservative lower bound on the implied parameter count
        // must fit (with generous slack) in the arena bytes actually
        // present, or the artifact is corrupt.
        let e = self.embed_dim as u64;
        let h = self.gru_hidden as u64;
        let cat_rows: u64 = self
            .schema
            .cat_cardinalities
            .iter()
            .fold(0u64, |acc, &c| acc.saturating_add(c as u64));
        let mut implied = cat_rows.saturating_mul(e);
        implied =
            implied.saturating_add(3u64.saturating_mul(h).saturating_mul(h.saturating_add(e)));
        let mut prev = h;
        for &m in &self.mlp_hidden {
            implied = implied.saturating_add(prev.saturating_mul(m as u64));
            prev = m as u64;
        }
        let arena_bytes = (self.params_g.len() + self.params_h.len()) as u64;
        if implied.saturating_mul(4) > arena_bytes.saturating_mul(8).saturating_add(1 << 16) {
            return Err(UaeError::Checkpoint(CheckpointError::Corrupt(
                "implausible architecture: implied parameter count exceeds the stored arenas",
            )));
        }
        let cfg = UaeConfig {
            embed_dim: self.embed_dim,
            gru_hidden: self.gru_hidden,
            mlp_hidden: self.mlp_hidden.clone(),
            ..UaeConfig::default()
        };
        // The seed only affects initial values, which load_params overwrites.
        let mut uae = if self.sequential {
            Uae::new(&self.schema, cfg)
        } else {
            Uae::new_sar(&self.schema, cfg)
        };
        load_params(uae.attention_params_mut(), &self.params_g).map_err(UaeError::Decode)?;
        load_params(uae.propensity_params_mut(), &self.params_h).map_err(UaeError::Decode)?;
        Ok(uae)
    }

    /// Serializes to `.uaem` bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_bytes(MAGIC.as_slice());
        w.put_u32(VERSION);
        w.put_u8(if self.sequential {
            VARIANT_SEQUENTIAL
        } else {
            VARIANT_LOCAL
        });
        w.put_f32(self.gamma);
        put_schema(&mut w, &self.schema);
        // Architecture.
        w.put_u32(self.embed_dim as u32);
        w.put_u32(self.gru_hidden as u32);
        w.put_u32(self.mlp_hidden.len() as u32);
        for &h in &self.mlp_hidden {
            w.put_u32(h as u32);
        }
        // Arenas and extras.
        w.put_bytes(&self.params_g);
        w.put_bytes(&self.params_h);
        w.put_u32(self.extras.len() as u32);
        for (name, blob) in &self.extras {
            w.put_bytes(name.as_bytes());
            w.put_bytes(blob);
        }
        w.into_bytes()
    }

    /// Decodes `.uaem` bytes. Container-level damage is a typed
    /// [`UaeError::Checkpoint`]. A downstream-recommender artifact (variant
    /// 2) is rejected here — sniff with
    /// [`FrozenArtifact::read_from`](crate::FrozenArtifact::read_from) when
    /// the variant is not known up front.
    pub fn decode(bytes: &[u8]) -> Result<FrozenModel, UaeError> {
        let mut r = check_header(bytes)?;
        let inner = |r: &mut ByteReader| -> Result<FrozenModel, CheckpointError> {
            let sequential = match r.get_u8()? {
                VARIANT_SEQUENTIAL => true,
                VARIANT_LOCAL => false,
                VARIANT_RECOMMENDER => {
                    return Err(CheckpointError::Corrupt(
                        "downstream-recommender artifact; decode via FrozenArtifact",
                    ))
                }
                _ => return Err(CheckpointError::Corrupt("bad artifact-variant tag")),
            };
            let gamma = r.get_f32()?;
            let schema = get_schema(r)?;
            let embed_dim = r.get_u32()? as usize;
            let gru_hidden = r.get_u32()? as usize;
            let n_mlp = r.get_u32()? as usize;
            let mut mlp_hidden = Vec::with_capacity(n_mlp.min(1 << 10));
            for _ in 0..n_mlp {
                mlp_hidden.push(r.get_u32()? as usize);
            }
            let params_g = r.get_bytes()?;
            let params_h = r.get_bytes()?;
            let n_extra = r.get_u32()? as usize;
            let mut extras = Vec::with_capacity(n_extra.min(1 << 10));
            for _ in 0..n_extra {
                let name = String::from_utf8(r.get_bytes()?)
                    .map_err(|_| CheckpointError::Corrupt("non-utf8 name"))?;
                extras.push((name, r.get_bytes()?));
            }
            Ok(FrozenModel {
                schema,
                sequential,
                gamma,
                embed_dim,
                gru_hidden,
                mlp_hidden,
                params_g,
                params_h,
                extras,
            })
        };
        inner(&mut r).map_err(UaeError::Checkpoint)
    }

    /// Writes the snapshot to `path` atomically (sibling `.tmp` + rename,
    /// same crash-safety contract as `.uaec` checkpoints).
    pub fn write_to(&self, path: &Path) -> Result<(), UaeError> {
        write_atomic(path, &self.encode())
    }

    /// Reads and decodes a snapshot from `path`.
    pub fn read_from(path: &Path) -> Result<FrozenModel, UaeError> {
        FrozenModel::decode(&read_file(path)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uae_data::{generate, SimConfig};

    fn tiny_model() -> (uae_data::Dataset, Uae) {
        let ds = generate(&SimConfig::tiny(), 5);
        let cfg = UaeConfig {
            gru_hidden: 8,
            mlp_hidden: vec![8],
            ..UaeConfig::default()
        };
        let uae = Uae::new(&ds.schema, cfg);
        (ds, uae)
    }

    #[test]
    fn encode_decode_round_trips() {
        let (ds, uae) = tiny_model();
        let frozen = FrozenModel::from_uae(&uae, &ds.schema, 15.0)
            .with_extra("downstream.dcnv2", vec![1, 2, 3]);
        let decoded = FrozenModel::decode(&frozen.encode()).unwrap();
        assert_eq!(decoded, frozen);
        assert_eq!(decoded.extra("downstream.dcnv2"), Some(&[1u8, 2, 3][..]));
        assert_eq!(decoded.extra("missing"), None);
    }

    #[test]
    fn build_restores_exact_parameter_values() {
        let (ds, uae) = tiny_model();
        let frozen = FrozenModel::from_uae(&uae, &ds.schema, 15.0);
        let rebuilt = frozen.build().unwrap();
        assert_eq!(
            save_params(rebuilt.attention_params()),
            save_params(uae.attention_params())
        );
        assert_eq!(
            save_params(rebuilt.propensity_params()),
            save_params(uae.propensity_params())
        );
    }

    #[test]
    fn truncated_snapshot_is_a_typed_checkpoint_error() {
        let (ds, uae) = tiny_model();
        let bytes = FrozenModel::from_uae(&uae, &ds.schema, 15.0).encode();
        for cut in [0, 4, 16, bytes.len() / 2, bytes.len() - 1] {
            match FrozenModel::decode(&bytes[..cut]) {
                Err(UaeError::Checkpoint(_)) => {}
                other => panic!("cut={cut}: expected Checkpoint error, got {other:?}"),
            }
        }
    }

    #[test]
    fn bad_magic_and_version_are_rejected() {
        let (ds, uae) = tiny_model();
        let frozen = FrozenModel::from_uae(&uae, &ds.schema, 15.0);
        let mut bytes = frozen.encode();
        // put_bytes prefixes an 8-byte length, so the magic starts at 8.
        bytes[8] = b'X';
        assert_eq!(
            FrozenModel::decode(&bytes),
            Err(UaeError::Checkpoint(CheckpointError::BadMagic))
        );
        let mut bytes = frozen.encode();
        bytes[12] = 99;
        assert!(matches!(
            FrozenModel::decode(&bytes),
            Err(UaeError::Checkpoint(CheckpointError::BadVersion(_)))
        ));
    }

    #[test]
    fn mismatched_schema_fails_with_decode_error() {
        let (ds, uae) = tiny_model();
        let mut frozen = FrozenModel::from_uae(&uae, &ds.schema, 15.0);
        // Grow one embedding table's cardinality: the rebuilt arena expects
        // a bigger tensor than the blob carries.
        frozen.schema.cat_cardinalities[0] += 7;
        match frozen.build() {
            Err(UaeError::Decode(e)) => drop(e),
            Err(other) => panic!("expected Decode error, got {other:?}"),
            Ok(_) => panic!("expected Decode error, got Ok"),
        }
    }

    #[test]
    fn file_round_trip_is_atomic_and_exact() {
        let (ds, uae) = tiny_model();
        let frozen = FrozenModel::from_uae(&uae, &ds.schema, 12.5);
        let dir = std::env::temp_dir().join(format!("uaem_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.uaem");
        frozen.write_to(&path).unwrap();
        assert!(!path.with_extension("tmp").exists(), "tmp file left behind");
        let read = FrozenModel::read_from(&path).unwrap();
        assert_eq!(read, frozen);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
