//! The daemon's wire protocol: length-prefixed binary frames over TCP.
//!
//! Every frame is `[u32 LE payload length][payload]` with the payload
//! bounded by [`MAX_FRAME`] (a declared length past the bound is a typed
//! protocol error, never an allocation). The first payload byte is the
//! frame kind; the rest is kind-specific, encoded with the same
//! bounds-checked [`ByteWriter`]/[`ByteReader`] pair as the `.uaem`/`.uaec`
//! containers, so a truncated or bit-flipped frame decodes to a typed
//! [`UaeError::Protocol`] instead of a panic or over-read.
//!
//! Request kinds: [`Request::Ping`], [`Request::Score`] (sessions of raw
//! feature events plus a per-request deadline), [`Request::Stats`],
//! [`Request::Swap`] (hot-reload a `.uaem` path), [`Request::Shutdown`].
//!
//! Responses carry a status byte: `0` = ok (kind-specific payload), `1` =
//! typed error (stable error code + the two numeric fields some variants
//! carry + display string), so a client can rebuild the exact
//! [`UaeError`] variant the daemon hit. Degradation stays typed end to
//! end: a shed, a deadline miss, a worker panic, and a rejected swap are
//! all *answers*, not dropped connections.

use std::io::{Read, Write};
use std::net::TcpStream;

use uae_data::{Dataset, FeatureSchema};
use uae_runtime::checkpoint::CheckpointError;
use uae_runtime::{ByteReader, ByteWriter, UaeError};

/// Hard upper bound on one frame's payload (requests and responses). Large
/// enough for thousands of sessions, small enough that a hostile length
/// field cannot OOM the daemon.
pub const MAX_FRAME: usize = 8 * 1024 * 1024;

/// Frame kind tags (first payload byte of a request).
pub(crate) const KIND_PING: u8 = 0;
pub(crate) const KIND_SCORE: u8 = 1;
pub(crate) const KIND_STATS: u8 = 2;
pub(crate) const KIND_SWAP: u8 = 3;
pub(crate) const KIND_SHUTDOWN: u8 = 4;
pub(crate) const KIND_DUMP: u8 = 5;

/// Response status byte.
pub(crate) const STATUS_OK: u8 = 0;
pub(crate) const STATUS_ERR: u8 = 1;

/// One event of a live session as it crosses the wire: the categorical
/// and dense feature values plus the observed feedback-type bit `e`
/// (active/passive), which the sequential propensity head consumes as its
/// recurrent input.
#[derive(Debug, Clone, PartialEq)]
pub struct WireEvent {
    pub cat: Vec<u32>,
    pub dense: Vec<f32>,
    pub active: bool,
}

/// One listener session in a score request.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct WireSession {
    pub events: Vec<WireEvent>,
}

impl WireSession {
    /// Extracts a dataset session into wire form (the client-side bridge
    /// from simulated listeners to live requests).
    pub fn from_dataset(dataset: &Dataset, session: usize) -> WireSession {
        WireSession {
            events: dataset.sessions[session]
                .events
                .iter()
                .map(|ev| WireEvent {
                    cat: ev.cat.clone(),
                    dense: ev.dense.clone(),
                    active: ev.e(),
                })
                .collect(),
        }
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// A decoded request frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe; answered with an empty ok frame.
    Ping,
    /// Score the sessions' events. `deadline_ms = 0` means "use the
    /// daemon's default budget".
    Score {
        deadline_ms: u32,
        sessions: Vec<WireSession>,
    },
    /// Health/readiness probe plus the daemon's counter snapshot.
    Stats,
    /// Hot-reload the `.uaem` artifact at `path`, draining in-flight
    /// batches; a failed decode rolls back to the last-good generation.
    Swap { path: String },
    /// Dump the flight recorder (the last N trace summaries) to a JSONL
    /// file on the daemon's host; answered with the path written.
    Dump,
    /// Drain and exit.
    Shutdown,
}

/// Per-session scores in a score response (request order).
#[derive(Debug, Clone, PartialEq)]
pub struct SessionScores {
    pub attention: Vec<f32>,
    pub propensity: Vec<f32>,
    pub weights: Vec<f32>,
}

/// A decoded ok-response payload.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    Pong,
    Scored {
        /// Model generation that served the request (for hot-swap
        /// determinism checks).
        generation: u64,
        /// The daemon-side trace id minted for this request (0 when
        /// tracing is disabled), so clients can correlate replies with
        /// flight-recorder dumps and assert zero orphaned traces.
        trace_id: u64,
        sessions: Vec<SessionScores>,
    },
    Stats(StatsSnapshot),
    Swapped {
        generation: u64,
    },
    /// Flight recorder written to `path` with `traces` trace summaries.
    Dumped {
        path: String,
        traces: u64,
    },
    ShuttingDown,
}

/// Quantile summary plus sparse bucket dump of one daemon histogram, as
/// carried in the stats frame. Latency histograms are in microseconds;
/// size histograms (batch sessions, queue depth) are raw counts; value
/// histograms (propensity/attention/weight) are in milli-units.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct WireHist {
    pub name: String,
    pub count: u64,
    pub sum: u64,
    pub max: u64,
    pub p50: u64,
    pub p90: u64,
    pub p99: u64,
    pub p999: u64,
    /// Nonzero buckets as `(inclusive upper bound, count)`, value order.
    pub buckets: Vec<(u64, u64)>,
}

impl WireHist {
    /// Builds the wire row from a histogram summary.
    pub fn from_summary(name: &str, s: &uae_obs::HistogramSummary) -> WireHist {
        WireHist {
            name: name.to_string(),
            count: s.count,
            sum: s.sum,
            max: s.max,
            p50: s.p50,
            p90: s.p90,
            p99: s.p99,
            p999: s.p999,
            buckets: s.buckets.clone(),
        }
    }
}

/// Point-in-time daemon health: readiness plus the counters the probes and
/// the chaos harness assert on. `uptime_ms` (monotonic since daemon start)
/// and `snapshot_unix_ms` (wall clock at snapshot time) make client-side
/// deltas between two stats calls computable: rates are
/// `Δcounter / Δuptime_ms`, and staleness is visible instead of guessed.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StatsSnapshot {
    pub ready: bool,
    pub generation: u64,
    pub queue_depth: u64,
    pub requests: u64,
    pub sessions: u64,
    pub events: u64,
    pub shed: u64,
    pub deadline_miss: u64,
    pub worker_restarts: u64,
    pub protocol_errors: u64,
    pub swaps: u64,
    pub swap_rollbacks: u64,
    /// Milliseconds since the daemon bound its listener (monotonic).
    pub uptime_ms: u64,
    /// Wall-clock milliseconds since the unix epoch when this snapshot was
    /// taken.
    pub snapshot_unix_ms: u64,
    /// Traces minted at frame decode (score requests only).
    pub traces_started: u64,
    /// Traces closed with an outcome. Equal to `traces_started` when no
    /// request is in flight — the trace-complete contract.
    pub traces_completed: u64,
    /// Traces excluded from the *stage* histograms: shed and protocol-error
    /// outcomes never reach a worker, so they land in `request_us` but not
    /// in `queue_wait_us`/`assemble_us`/`score_us`/`reply_us`. Operators can
    /// reconcile `request_us.count == queue_wait_us.count + hist_excluded`.
    pub hist_excluded: u64,
    /// Live histogram summaries (empty when tracing is disabled).
    pub hists: Vec<WireHist>,
    /// Sessions scored per feature-hash shard since daemon start (one slot
    /// per worker). Skew here means the leading categorical feature is hot
    /// in one hash range, not that a worker thread is slow.
    pub shard_occupancy: Vec<u64>,
}

/// Stable wire codes for [`UaeError`] variants a daemon can answer with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ErrCode {
    Overload = 1,
    Deadline = 2,
    Protocol = 3,
    SwapRejected = 4,
    Unavailable = 5,
    WorkerPanic = 6,
    Other = 7,
}

fn proto(detail: impl Into<String>) -> UaeError {
    UaeError::Protocol {
        detail: detail.into(),
    }
}

/// Maps a bounds-check failure from the shared byte codec onto the wire
/// error taxonomy (a truncated *frame* is a protocol violation, not a
/// checkpoint problem).
fn codec(e: CheckpointError) -> UaeError {
    proto(format!("malformed frame: {e}"))
}

/// Encodes a request into one frame payload (no length prefix).
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut w = ByteWriter::new();
    match req {
        Request::Ping => w.put_u8(KIND_PING),
        Request::Score {
            deadline_ms,
            sessions,
        } => {
            w.put_u8(KIND_SCORE);
            w.put_u32(*deadline_ms);
            w.put_u32(sessions.len() as u32);
            for s in sessions {
                w.put_u32(s.events.len() as u32);
                for ev in &s.events {
                    w.put_u32(ev.cat.len() as u32);
                    for &c in &ev.cat {
                        w.put_u32(c);
                    }
                    w.put_u32(ev.dense.len() as u32);
                    for &d in &ev.dense {
                        w.put_f32(d);
                    }
                    w.put_bool(ev.active);
                }
            }
        }
        Request::Stats => w.put_u8(KIND_STATS),
        Request::Swap { path } => {
            w.put_u8(KIND_SWAP);
            w.put_bytes(path.as_bytes());
        }
        Request::Dump => w.put_u8(KIND_DUMP),
        Request::Shutdown => w.put_u8(KIND_SHUTDOWN),
    }
    w.into_bytes()
}

/// Decodes a request frame payload. Every failure is a typed
/// [`UaeError::Protocol`]; declared counts are validated against the bytes
/// actually present before any allocation trusts them.
pub fn decode_request(bytes: &[u8]) -> Result<Request, UaeError> {
    let mut r = ByteReader::new(bytes);
    let kind = r.get_u8().map_err(codec)?;
    let req = match kind {
        KIND_PING => Request::Ping,
        KIND_SCORE => {
            let deadline_ms = r.get_u32().map_err(codec)?;
            let n_sessions = r.get_u32().map_err(codec)? as usize;
            // Each session costs at least 4 bytes (its length word); a
            // count beyond that is a lie about bytes that cannot exist.
            if n_sessions > bytes.len() / 4 {
                return Err(proto(format!(
                    "declared session count {n_sessions} exceeds frame capacity"
                )));
            }
            let mut sessions = Vec::with_capacity(n_sessions);
            for _ in 0..n_sessions {
                let n_events = r.get_u32().map_err(codec)? as usize;
                if n_events > bytes.len() {
                    return Err(proto(format!(
                        "declared event count {n_events} exceeds frame capacity"
                    )));
                }
                let mut events = Vec::with_capacity(n_events);
                for _ in 0..n_events {
                    let n_cat = r.get_u32().map_err(codec)? as usize;
                    if n_cat > bytes.len() / 4 {
                        return Err(proto("declared cat-field count exceeds frame capacity"));
                    }
                    let mut cat = Vec::with_capacity(n_cat);
                    for _ in 0..n_cat {
                        cat.push(r.get_u32().map_err(codec)?);
                    }
                    let n_dense = r.get_u32().map_err(codec)? as usize;
                    if n_dense > bytes.len() / 4 {
                        return Err(proto("declared dense count exceeds frame capacity"));
                    }
                    let mut dense = Vec::with_capacity(n_dense);
                    for _ in 0..n_dense {
                        dense.push(r.get_f32().map_err(codec)?);
                    }
                    let active = r.get_u8().map_err(codec)? != 0;
                    events.push(WireEvent { cat, dense, active });
                }
                sessions.push(WireSession { events });
            }
            Request::Score {
                deadline_ms,
                sessions,
            }
        }
        KIND_STATS => Request::Stats,
        KIND_SWAP => {
            let path = String::from_utf8(r.get_bytes().map_err(codec)?)
                .map_err(|_| proto("swap path is not utf-8"))?;
            Request::Swap { path }
        }
        KIND_DUMP => Request::Dump,
        KIND_SHUTDOWN => Request::Shutdown,
        other => return Err(proto(format!("unknown request kind {other}"))),
    };
    Ok(req)
}

/// Validates a score request against the serving schema: field counts and
/// categorical ranges must match what the model was trained on, and
/// session lengths must fit the daemon's configured bound. Violations are
/// typed protocol errors — the daemon never feeds unchecked indices into
/// an embedding gather.
pub fn validate_sessions(
    sessions: &[WireSession],
    schema: &FeatureSchema,
    max_sessions: usize,
    max_len: Option<usize>,
) -> Result<(), UaeError> {
    if sessions.len() > max_sessions {
        return Err(proto(format!(
            "request holds {} sessions, limit {max_sessions}",
            sessions.len()
        )));
    }
    let n_cat = schema.num_cat_fields();
    let n_dense = schema.num_dense();
    for (si, s) in sessions.iter().enumerate() {
        if let Some(limit) = max_len {
            if s.events.len() > limit {
                return Err(proto(format!(
                    "session {si} has {} events, UAE_SERVE_MAX_LEN is {limit}",
                    s.events.len()
                )));
            }
        }
        for (ti, ev) in s.events.iter().enumerate() {
            if ev.cat.len() != n_cat {
                return Err(proto(format!(
                    "session {si} event {ti}: {} categorical fields, schema has {n_cat}",
                    ev.cat.len()
                )));
            }
            if ev.dense.len() != n_dense {
                return Err(proto(format!(
                    "session {si} event {ti}: {} dense features, schema has {n_dense}",
                    ev.dense.len()
                )));
            }
            for (f, (&c, &card)) in ev.cat.iter().zip(&schema.cat_cardinalities).enumerate() {
                if c as usize >= card {
                    return Err(proto(format!(
                        "session {si} event {ti} field {f}: value {c} >= cardinality {card}"
                    )));
                }
            }
            if ev.dense.iter().any(|d| !d.is_finite()) {
                return Err(proto(format!(
                    "session {si} event {ti}: non-finite dense feature"
                )));
            }
        }
    }
    Ok(())
}

/// Encodes an ok response.
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u8(STATUS_OK);
    match resp {
        Response::Pong => w.put_u8(KIND_PING),
        Response::Scored {
            generation,
            trace_id,
            sessions,
        } => {
            w.put_u8(KIND_SCORE);
            w.put_u64(*generation);
            w.put_u64(*trace_id);
            w.put_u32(sessions.len() as u32);
            for s in sessions {
                w.put_u32(s.attention.len() as u32);
                for &v in &s.attention {
                    w.put_f32(v);
                }
                for &v in &s.propensity {
                    w.put_f32(v);
                }
                for &v in &s.weights {
                    w.put_f32(v);
                }
            }
        }
        Response::Stats(s) => {
            w.put_u8(KIND_STATS);
            w.put_bool(s.ready);
            for v in [
                s.generation,
                s.queue_depth,
                s.requests,
                s.sessions,
                s.events,
                s.shed,
                s.deadline_miss,
                s.worker_restarts,
                s.protocol_errors,
                s.swaps,
                s.swap_rollbacks,
                s.uptime_ms,
                s.snapshot_unix_ms,
                s.traces_started,
                s.traces_completed,
                s.hist_excluded,
            ] {
                w.put_u64(v);
            }
            w.put_u32(s.hists.len() as u32);
            for h in &s.hists {
                w.put_bytes(h.name.as_bytes());
                for v in [h.count, h.sum, h.max, h.p50, h.p90, h.p99, h.p999] {
                    w.put_u64(v);
                }
                w.put_u32(h.buckets.len() as u32);
                for &(hi, c) in &h.buckets {
                    w.put_u64(hi);
                    w.put_u64(c);
                }
            }
            w.put_u32(s.shard_occupancy.len() as u32);
            for &hits in &s.shard_occupancy {
                w.put_u64(hits);
            }
        }
        Response::Swapped { generation } => {
            w.put_u8(KIND_SWAP);
            w.put_u64(*generation);
        }
        Response::Dumped { path, traces } => {
            w.put_u8(KIND_DUMP);
            w.put_bytes(path.as_bytes());
            w.put_u64(*traces);
        }
        Response::ShuttingDown => w.put_u8(KIND_SHUTDOWN),
    }
    w.into_bytes()
}

/// Encodes an error response carrying the typed [`UaeError`].
pub fn encode_error(err: &UaeError) -> Vec<u8> {
    let (code, a, b) = match err {
        UaeError::Overload { queue_depth, limit } => {
            (ErrCode::Overload, *queue_depth as u64, *limit as u64)
        }
        UaeError::DeadlineExceeded {
            waited_ms,
            budget_ms,
        } => (ErrCode::Deadline, *waited_ms, *budget_ms),
        UaeError::Protocol { .. } => (ErrCode::Protocol, 0, 0),
        UaeError::SwapRejected { .. } => (ErrCode::SwapRejected, 0, 0),
        UaeError::Unavailable { .. } => (ErrCode::Unavailable, 0, 0),
        UaeError::WorkerPanic { .. } => (ErrCode::WorkerPanic, 0, 0),
        _ => (ErrCode::Other, 0, 0),
    };
    let mut w = ByteWriter::new();
    w.put_u8(STATUS_ERR);
    w.put_u8(code as u8);
    w.put_u64(a);
    w.put_u64(b);
    let detail = match err {
        UaeError::Protocol { detail }
        | UaeError::SwapRejected { detail }
        | UaeError::Unavailable { detail }
        | UaeError::WorkerPanic { detail } => detail.clone(),
        other => other.to_string(),
    };
    w.put_bytes(detail.as_bytes());
    w.into_bytes()
}

/// Decodes a response frame payload back into `Ok(Response)` or the typed
/// `Err(UaeError)` the daemon answered with.
pub fn decode_response(bytes: &[u8]) -> Result<Response, UaeError> {
    let mut r = ByteReader::new(bytes);
    let status = r.get_u8().map_err(codec)?;
    if status == STATUS_ERR {
        let code = r.get_u8().map_err(codec)?;
        let a = r.get_u64().map_err(codec)?;
        let b = r.get_u64().map_err(codec)?;
        let detail = String::from_utf8(r.get_bytes().map_err(codec)?)
            .map_err(|_| proto("error detail is not utf-8"))?;
        return Err(match code {
            x if x == ErrCode::Overload as u8 => UaeError::Overload {
                queue_depth: a as usize,
                limit: b as usize,
            },
            x if x == ErrCode::Deadline as u8 => UaeError::DeadlineExceeded {
                waited_ms: a,
                budget_ms: b,
            },
            x if x == ErrCode::Protocol as u8 => UaeError::Protocol { detail },
            x if x == ErrCode::SwapRejected as u8 => UaeError::SwapRejected { detail },
            x if x == ErrCode::Unavailable as u8 => UaeError::Unavailable { detail },
            x if x == ErrCode::WorkerPanic as u8 => UaeError::WorkerPanic { detail },
            _ => UaeError::Unavailable { detail },
        });
    }
    if status != STATUS_OK {
        return Err(proto(format!("unknown response status {status}")));
    }
    let kind = r.get_u8().map_err(codec)?;
    let resp = match kind {
        KIND_PING => Response::Pong,
        KIND_SCORE => {
            let generation = r.get_u64().map_err(codec)?;
            let trace_id = r.get_u64().map_err(codec)?;
            let n_sessions = r.get_u32().map_err(codec)? as usize;
            if n_sessions > bytes.len() / 4 {
                return Err(proto("declared session count exceeds frame capacity"));
            }
            let mut sessions = Vec::with_capacity(n_sessions);
            for _ in 0..n_sessions {
                let n = r.get_u32().map_err(codec)? as usize;
                if n > bytes.len() / 4 {
                    return Err(proto("declared score count exceeds frame capacity"));
                }
                let mut read_vec = |n: usize| -> Result<Vec<f32>, UaeError> {
                    let mut v = Vec::with_capacity(n);
                    for _ in 0..n {
                        v.push(r.get_f32().map_err(codec)?);
                    }
                    Ok(v)
                };
                let attention = read_vec(n)?;
                let propensity = read_vec(n)?;
                let weights = read_vec(n)?;
                sessions.push(SessionScores {
                    attention,
                    propensity,
                    weights,
                });
            }
            Response::Scored {
                generation,
                trace_id,
                sessions,
            }
        }
        KIND_STATS => {
            let ready = r.get_u8().map_err(codec)? != 0;
            let mut snap = {
                let mut next = || r.get_u64().map_err(codec);
                StatsSnapshot {
                    ready,
                    generation: next()?,
                    queue_depth: next()?,
                    requests: next()?,
                    sessions: next()?,
                    events: next()?,
                    shed: next()?,
                    deadline_miss: next()?,
                    worker_restarts: next()?,
                    protocol_errors: next()?,
                    swaps: next()?,
                    swap_rollbacks: next()?,
                    uptime_ms: next()?,
                    snapshot_unix_ms: next()?,
                    traces_started: next()?,
                    traces_completed: next()?,
                    hist_excluded: next()?,
                    hists: Vec::new(),
                    shard_occupancy: Vec::new(),
                }
            };
            let n_hists = r.get_u32().map_err(codec)? as usize;
            // Each histogram row costs at least 64 bytes of fixed fields.
            if n_hists > bytes.len() / 64 {
                return Err(proto("declared histogram count exceeds frame capacity"));
            }
            for _ in 0..n_hists {
                let name = String::from_utf8(r.get_bytes().map_err(codec)?)
                    .map_err(|_| proto("histogram name is not utf-8"))?;
                let mut next = || r.get_u64().map_err(codec);
                let (count, sum, max) = (next()?, next()?, next()?);
                let (p50, p90, p99, p999) = (next()?, next()?, next()?, next()?);
                let n_buckets = r.get_u32().map_err(codec)? as usize;
                if n_buckets > bytes.len() / 16 {
                    return Err(proto("declared bucket count exceeds frame capacity"));
                }
                let mut buckets = Vec::with_capacity(n_buckets);
                for _ in 0..n_buckets {
                    let hi = r.get_u64().map_err(codec)?;
                    let c = r.get_u64().map_err(codec)?;
                    buckets.push((hi, c));
                }
                snap.hists.push(WireHist {
                    name,
                    count,
                    sum,
                    max,
                    p50,
                    p90,
                    p99,
                    p999,
                    buckets,
                });
            }
            let n_shards = r.get_u32().map_err(codec)? as usize;
            if n_shards > bytes.len() / 8 {
                return Err(proto("declared shard count exceeds frame capacity"));
            }
            for _ in 0..n_shards {
                snap.shard_occupancy.push(r.get_u64().map_err(codec)?);
            }
            Response::Stats(snap)
        }
        KIND_SWAP => Response::Swapped {
            generation: r.get_u64().map_err(codec)?,
        },
        KIND_DUMP => Response::Dumped {
            path: String::from_utf8(r.get_bytes().map_err(codec)?)
                .map_err(|_| proto("dump path is not utf-8"))?,
            traces: r.get_u64().map_err(codec)?,
        },
        KIND_SHUTDOWN => Response::ShuttingDown,
        other => return Err(proto(format!("unknown response kind {other}"))),
    };
    Ok(resp)
}

/// Writes one length-prefixed frame to a stream.
pub fn write_frame(stream: &mut TcpStream, payload: &[u8]) -> Result<(), UaeError> {
    if payload.len() > MAX_FRAME {
        return Err(proto(format!(
            "frame of {} bytes exceeds MAX_FRAME {MAX_FRAME}",
            payload.len()
        )));
    }
    let mut buf = Vec::with_capacity(4 + payload.len());
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(payload);
    stream.write_all(&buf).map_err(|e| UaeError::Unavailable {
        detail: format!("connection write failed: {e}"),
    })
}

/// Reads one length-prefixed frame. Returns `Ok(None)` on a clean EOF at a
/// frame boundary (the peer hung up between requests); a declared length
/// past [`MAX_FRAME`] or an EOF mid-frame is a typed error.
pub fn read_frame(stream: &mut TcpStream) -> Result<Option<Vec<u8>>, UaeError> {
    let mut len_buf = [0u8; 4];
    let mut filled = 0usize;
    while filled < 4 {
        match stream.read(&mut len_buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => return Err(proto("connection closed mid-frame header")),
            Ok(n) => filled += n,
            Err(e) => {
                return Err(UaeError::Unavailable {
                    detail: format!("connection read failed: {e}"),
                })
            }
        }
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Err(proto(format!(
            "declared frame length {len} exceeds MAX_FRAME {MAX_FRAME}"
        )));
    }
    let mut payload = vec![0u8; len];
    let mut read = 0usize;
    while read < len {
        match stream.read(&mut payload[read..]) {
            Ok(0) => return Err(proto("connection closed mid-frame")),
            Ok(n) => read += n,
            Err(e) => {
                return Err(UaeError::Unavailable {
                    detail: format!("connection read failed: {e}"),
                })
            }
        }
    }
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;
    use uae_data::{generate, SimConfig};

    fn sample_sessions() -> (Dataset, Vec<WireSession>) {
        let ds = generate(&SimConfig::tiny(), 11);
        let sessions = (0..4).map(|s| WireSession::from_dataset(&ds, s)).collect();
        (ds, sessions)
    }

    #[test]
    fn requests_round_trip() {
        let (_, sessions) = sample_sessions();
        for req in [
            Request::Ping,
            Request::Score {
                deadline_ms: 250,
                sessions,
            },
            Request::Stats,
            Request::Swap {
                path: "/tmp/model.uaem".into(),
            },
            Request::Dump,
            Request::Shutdown,
        ] {
            let bytes = encode_request(&req);
            assert_eq!(decode_request(&bytes).unwrap(), req, "{req:?}");
        }
    }

    #[test]
    fn responses_round_trip() {
        for resp in [
            Response::Pong,
            Response::Scored {
                generation: 7,
                trace_id: 42,
                sessions: vec![SessionScores {
                    attention: vec![0.25, 0.5],
                    propensity: vec![0.75, 1.0],
                    weights: vec![0.1, 0.2],
                }],
            },
            Response::Stats(StatsSnapshot {
                ready: true,
                generation: 3,
                queue_depth: 12,
                requests: 100,
                sessions: 220,
                events: 4096,
                shed: 5,
                deadline_miss: 2,
                worker_restarts: 1,
                protocol_errors: 4,
                swaps: 2,
                swap_rollbacks: 1,
                uptime_ms: 60_000,
                snapshot_unix_ms: 1_754_600_000_000,
                traces_started: 107,
                traces_completed: 107,
                hist_excluded: 9,
                hists: vec![
                    WireHist {
                        name: "request_us".into(),
                        count: 100,
                        sum: 250_000,
                        max: 30_000,
                        p50: 2_000,
                        p90: 5_000,
                        p99: 20_000,
                        p999: 30_000,
                        buckets: vec![(2047, 60), (4095, 30), (32_767, 10)],
                    },
                    WireHist {
                        name: "queue_depth".into(),
                        count: 100,
                        sum: 150,
                        max: 6,
                        p50: 1,
                        p90: 3,
                        p99: 6,
                        p999: 6,
                        buckets: vec![(1, 70), (3, 24), (6, 6)],
                    },
                ],
                shard_occupancy: vec![40, 55, 62, 63],
            }),
            Response::Stats(StatsSnapshot::default()),
            Response::Swapped { generation: 4 },
            Response::Dumped {
                path: "/tmp/uae-flight-1.jsonl".into(),
                traces: 12,
            },
            Response::ShuttingDown,
        ] {
            let bytes = encode_response(&resp);
            assert_eq!(decode_response(&bytes).unwrap(), resp, "{resp:?}");
        }
    }

    #[test]
    fn typed_errors_survive_the_wire() {
        for err in [
            UaeError::Overload {
                queue_depth: 64,
                limit: 64,
            },
            UaeError::DeadlineExceeded {
                waited_ms: 600,
                budget_ms: 500,
            },
            UaeError::Protocol {
                detail: "bad frame".into(),
            },
            UaeError::SwapRejected {
                detail: "checkpoint rejected: bad magic".into(),
            },
            UaeError::Unavailable {
                detail: "draining".into(),
            },
            UaeError::WorkerPanic {
                detail: "injected panic".into(),
            },
        ] {
            let bytes = encode_error(&err);
            assert_eq!(decode_response(&bytes).unwrap_err(), err, "{err:?}");
        }
    }

    #[test]
    fn truncated_and_mutated_frames_are_typed_protocol_errors() {
        let (_, sessions) = sample_sessions();
        let bytes = encode_request(&Request::Score {
            deadline_ms: 0,
            sessions,
        });
        for cut in [0, 1, 2, 5, 9, bytes.len() / 2, bytes.len() - 1] {
            match decode_request(&bytes[..cut]) {
                Err(UaeError::Protocol { .. }) => {}
                Ok(Request::Ping) | Ok(Request::Stats) | Ok(Request::Shutdown) if cut == 1 => {
                    // A 1-byte prefix can alias a no-payload request; that
                    // is well-formed by construction, not a crash.
                }
                other => panic!("cut={cut}: expected Protocol error, got {other:?}"),
            }
        }
        // An oversized declared count must not allocate or panic.
        let mut w = ByteWriter::new();
        w.put_u8(KIND_SCORE);
        w.put_u32(0);
        w.put_u32(u32::MAX);
        match decode_request(&w.into_bytes()) {
            Err(UaeError::Protocol { detail }) => {
                assert!(detail.contains("session count"), "{detail}")
            }
            other => panic!("expected Protocol error, got {other:?}"),
        }
        // Unknown kind byte.
        match decode_request(&[99]) {
            Err(UaeError::Protocol { .. }) => {}
            other => panic!("expected Protocol error, got {other:?}"),
        }
    }

    #[test]
    fn validation_rejects_schema_mismatches() {
        let (ds, mut sessions) = sample_sessions();
        assert!(validate_sessions(&sessions, &ds.schema, 64, None).is_ok());
        // Too many sessions.
        match validate_sessions(&sessions, &ds.schema, 2, None) {
            Err(UaeError::Protocol { detail }) => assert!(detail.contains("limit"), "{detail}"),
            other => panic!("{other:?}"),
        }
        // Overlong session against a configured bound.
        match validate_sessions(&sessions, &ds.schema, 64, Some(1)) {
            Err(UaeError::Protocol { detail }) => {
                assert!(detail.contains("UAE_SERVE_MAX_LEN"), "{detail}")
            }
            other => panic!("{other:?}"),
        }
        // Out-of-range categorical value.
        sessions[0].events[0].cat[0] = u32::MAX;
        match validate_sessions(&sessions, &ds.schema, 64, None) {
            Err(UaeError::Protocol { detail }) => {
                assert!(detail.contains("cardinality"), "{detail}")
            }
            other => panic!("{other:?}"),
        }
        sessions[0].events[0].cat.pop();
        match validate_sessions(&sessions, &ds.schema, 64, None) {
            Err(UaeError::Protocol { .. }) => {}
            other => panic!("{other:?}"),
        }
        // Non-finite dense feature.
        let (_, mut sessions) = sample_sessions();
        sessions[1].events[0].dense[0] = f32::NAN;
        match validate_sessions(&sessions, &ds.schema, 64, None) {
            Err(UaeError::Protocol { detail }) => {
                assert!(detail.contains("non-finite"), "{detail}")
            }
            other => panic!("{other:?}"),
        }
    }
}
