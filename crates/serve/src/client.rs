//! A blocking client for the serving daemon, plus the raw-byte helpers the
//! chaos harness uses to behave badly on purpose.
//!
//! Every call is one request/reply exchange on a persistent connection.
//! Errors the daemon answers with come back as the exact typed
//! [`UaeError`] variant it hit (an [`UaeError::Overload`] shed, an
//! [`UaeError::DeadlineExceeded`] miss, an [`UaeError::WorkerPanic`]), so
//! callers branch on variants, not strings.

use std::net::TcpStream;
use std::time::Duration;

use uae_runtime::UaeError;

use crate::wire::{self, Request, Response, SessionScores, StatsSnapshot, WireSession};

fn unavailable(detail: String) -> UaeError {
    UaeError::Unavailable { detail }
}

/// A persistent connection to a serving daemon.
pub struct ServeClient {
    stream: TcpStream,
}

impl ServeClient {
    /// Connects to `addr` (e.g. `127.0.0.1:7878`).
    pub fn connect(addr: &str) -> Result<ServeClient, UaeError> {
        let stream =
            TcpStream::connect(addr).map_err(|e| unavailable(format!("connect {addr}: {e}")))?;
        let _ = stream.set_nodelay(true);
        Ok(ServeClient { stream })
    }

    /// Like [`connect`](ServeClient::connect) with a bounded wait, for
    /// probes that must not hang on a dead daemon.
    pub fn connect_timeout(addr: &str, timeout: Duration) -> Result<ServeClient, UaeError> {
        let sock: std::net::SocketAddr = addr
            .parse()
            .map_err(|e| unavailable(format!("bad address {addr}: {e}")))?;
        let stream = TcpStream::connect_timeout(&sock, timeout)
            .map_err(|e| unavailable(format!("connect {addr}: {e}")))?;
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(Some(timeout.max(Duration::from_millis(1)) * 10));
        Ok(ServeClient { stream })
    }

    fn call(&mut self, req: &Request) -> Result<Response, UaeError> {
        wire::write_frame(&mut self.stream, &wire::encode_request(req))?;
        let payload = wire::read_frame(&mut self.stream)?
            .ok_or_else(|| unavailable("daemon closed the connection before replying".into()))?;
        wire::decode_response(&payload)
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), UaeError> {
        match self.call(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(unexpected("Pong", &other)),
        }
    }

    /// Scores sessions under a latency budget (`deadline_ms = 0` uses the
    /// daemon's default). Returns the serving generation and per-session
    /// scores in request order.
    pub fn score(
        &mut self,
        sessions: Vec<WireSession>,
        deadline_ms: u32,
    ) -> Result<(u64, Vec<SessionScores>), UaeError> {
        self.score_traced(sessions, deadline_ms)
            .map(|(generation, _trace_id, scored)| (generation, scored))
    }

    /// Like [`score`](ServeClient::score) but also returns the daemon-side
    /// trace id (0 when the daemon runs with `UAE_TRACE=0`), so load
    /// generators can account for every admitted request against the
    /// daemon's `traces_started` / `traces_completed` counters.
    pub fn score_traced(
        &mut self,
        sessions: Vec<WireSession>,
        deadline_ms: u32,
    ) -> Result<(u64, u64, Vec<SessionScores>), UaeError> {
        let req = Request::Score {
            deadline_ms,
            sessions,
        };
        match self.call(&req)? {
            Response::Scored {
                generation,
                trace_id,
                sessions,
            } => Ok((generation, trace_id, sessions)),
            other => Err(unexpected("Scored", &other)),
        }
    }

    /// Health/readiness snapshot.
    pub fn stats(&mut self) -> Result<StatsSnapshot, UaeError> {
        match self.call(&Request::Stats)? {
            Response::Stats(s) => Ok(s),
            other => Err(unexpected("Stats", &other)),
        }
    }

    /// Hot-swaps the daemon onto the `.uaem` artifact at `path` (a path on
    /// the *daemon's* filesystem). Returns the new generation id.
    pub fn swap(&mut self, path: &str) -> Result<u64, UaeError> {
        let req = Request::Swap { path: path.into() };
        match self.call(&req)? {
            Response::Swapped { generation } => Ok(generation),
            other => Err(unexpected("Swapped", &other)),
        }
    }

    /// Asks the daemon to dump its flight recorder (the last N trace
    /// summaries) to a JSONL file on the *daemon's* filesystem. Returns
    /// the dump path and the number of traces written.
    pub fn dump(&mut self) -> Result<(String, u64), UaeError> {
        match self.call(&Request::Dump)? {
            Response::Dumped { path, traces } => Ok((path, traces)),
            other => Err(unexpected("Dumped", &other)),
        }
    }

    /// Asks the daemon to drain and exit.
    pub fn shutdown(&mut self) -> Result<(), UaeError> {
        match self.call(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            other => Err(unexpected("ShuttingDown", &other)),
        }
    }

    /// Chaos helper: frames an arbitrary payload (well-formed length
    /// prefix, hostile body) and returns the daemon's decoded reply — the
    /// expected outcome is the typed `Err` the daemon answers with.
    pub fn call_raw_payload(&mut self, payload: &[u8]) -> Result<Response, UaeError> {
        wire::write_frame(&mut self.stream, payload)?;
        let reply = wire::read_frame(&mut self.stream)?
            .ok_or_else(|| unavailable("daemon closed the connection before replying".into()))?;
        wire::decode_response(&reply)
    }

    /// Chaos helper: writes raw bytes with **no** framing discipline and
    /// hangs up (a truncated frame / mid-request disconnect). Consumes the
    /// client because the connection is deliberately left broken.
    pub fn send_bytes_and_hangup(mut self, bytes: &[u8]) -> Result<(), UaeError> {
        use std::io::Write;
        self.stream
            .write_all(bytes)
            .map_err(|e| unavailable(format!("raw write: {e}")))?;
        let _ = self.stream.flush();
        Ok(()) // dropping the stream closes it mid-frame
    }
}

fn unexpected(wanted: &str, got: &Response) -> UaeError {
    UaeError::Protocol {
        detail: format!("expected {wanted} response, got {got:?}"),
    }
}
