//! The `uae serve` daemon: a long-running scoring service that degrades
//! instead of dying.
//!
//! Architecture (all std, no async runtime):
//!
//! ```text
//! accept loop ──► connection threads ──► bounded ServeQueue ──► scorer workers
//!                     │                        │                     │
//!                     │   shed (Overload) ◄────┘    micro-batch ◄────┤
//!                     │                                              │
//!                     └──────────── reply channels ◄─────────────────┘
//! ```
//!
//! * **Admission control** — each `Score` request becomes one [`Job`] on a
//!   bounded queue; when the queue is full the request is *answered* with a
//!   typed [`UaeError::Overload`], never silently dropped.
//! * **Micro-batching** — workers greedily coalesce queued jobs (possibly
//!   from many connections) into one batch up to `UAE_SERVE_BATCH`
//!   sessions; per-session scores are bit-identical regardless of batch
//!   composition (row-independent forward), so coalescing is invisible to
//!   clients.
//! * **Deadlines** — a job carries the client's budget; workers answer
//!   expired jobs with [`UaeError::DeadlineExceeded`] *before* spending
//!   compute on them, and re-check after scoring so a stalled forward
//!   (e.g. `UAE_FAULT_SLOW_SCORER_MS`) also surfaces as a typed miss.
//! * **Panic isolation** — each micro-batch runs under `catch_unwind`; a
//!   panicking scorer answers its jobs with [`UaeError::WorkerPanic`],
//!   sleeps a deterministic [`Backoff`] step, and keeps serving.
//! * **Hot swap with drain** — `Swap` loads a new `.uaem`, flips the
//!   generation behind an `RwLock<Arc<Generation>>`, then waits for the old
//!   generation's refcount to drain (in-flight batches hold clones). A
//!   failed decode or schema mismatch rolls back to last-good and answers
//!   [`UaeError::SwapRejected`].
//! * **Request-scoped tracing** — every `Score` request gets a trace id
//!   minted at decode (`UAE_TRACE`, on by default) and carried through
//!   admission → batch assembly → scoring → reply; per-stage timings land
//!   in fixed-memory [`AtomicHistogram`]s exported through `Stats`, and a
//!   [`FlightRecorder`] ring keeps the last N trace summaries
//!   (`UAE_FLIGHT_RECORDER_N`), dumped to JSONL on worker panic, swap
//!   rollback, or a `Dump` request. Tracing never changes scores — it only
//!   observes — so replies are bit-identical with it on or off.
//! * **Telemetry** — `serve.daemon.*` counters, `serve.queue_depth` /
//!   `serve.swap_generation` gauges, and `ServeFault` / `Swap` events flow
//!   to the obs handle captured when the daemon was bound, so spawned
//!   threads join the caller's JSONL stream. With `UAE_METRICS_INTERVAL_MS`
//!   set, a metrics thread additionally emits a periodic
//!   [`uae_obs::Event::MetricsSnapshot`] carrying the histogram state.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::sync_channel;
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

use uae_data::{Dataset, Event, FeatureSchema, Feedback, Session, Truth};
use uae_obs::{AtomicHistogram, FlightRecorder, HistStat, StageTimes, TraceSummary};
use uae_runtime::{Backoff, UaeError};

use crate::fault::FaultPlan;
use crate::model::FrozenModel;
use crate::queue::{Job, ServeQueue};
use crate::scorer::{Scorer, ScorerConfig};
use crate::wire::{self, Request, Response, SessionScores, StatsSnapshot, WireHist, WireSession};

/// How long the daemon waits for in-flight batches to release an old
/// generation before declaring the swap active anyway (in-flight batches
/// still finish correctly on the old model; they just overlap the new
/// generation's first requests).
const SWAP_DRAIN_BUDGET: Duration = Duration::from_secs(5);

/// Poll interval of the non-blocking accept loop and connection peek loop.
const POLL_INTERVAL: Duration = Duration::from_millis(20);

/// Serving knobs (`UAE_SERVE_*` plus the observability family).
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Listen address (`UAE_SERVE_ADDR`, default `127.0.0.1:0` — port 0
    /// binds an ephemeral port; read it back with [`Daemon::local_addr`]).
    pub addr: String,
    /// Sessions per micro-batch (`UAE_SERVE_BATCH`, default 64).
    pub batch: usize,
    /// Upper bound on one session's length (`UAE_SERVE_MAX_LEN`; requests
    /// holding longer sessions are rejected with a typed protocol error).
    pub max_len: Option<usize>,
    /// Scorer worker threads (`UAE_SERVE_WORKERS`, default 2).
    pub workers: usize,
    /// Bounded queue capacity in sessions (`UAE_SERVE_QUEUE`, default 256);
    /// past it, requests are shed with [`UaeError::Overload`].
    pub queue_capacity: usize,
    /// Default per-request latency budget in ms applied when a request's
    /// own `deadline_ms` is 0 (`UAE_SERVE_DEADLINE_MS`, default 0 = none).
    pub default_deadline_ms: u32,
    /// Most sessions one request may carry (default 1024).
    pub max_sessions_per_request: usize,
    /// Request-scoped tracing (`UAE_TRACE`, default on; `0`/`false`/`off`
    /// disables). Tracing records stage timings into histograms and the
    /// flight recorder; scores are bit-identical either way.
    pub trace: bool,
    /// Flight-recorder ring capacity in traces (`UAE_FLIGHT_RECORDER_N`,
    /// default 256).
    pub flight_recorder_n: usize,
    /// Period of the `MetricsSnapshot` telemetry event in milliseconds
    /// (`UAE_METRICS_INTERVAL_MS`, default 0 = no metrics thread).
    pub metrics_interval_ms: u64,
    /// Directory flight-recorder dumps are written to
    /// (`UAE_FLIGHT_RECORDER_DIR`, default the system temp dir).
    pub flight_dir: PathBuf,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            addr: "127.0.0.1:0".into(),
            batch: 64,
            max_len: None,
            workers: 2,
            queue_capacity: 256,
            default_deadline_ms: 0,
            max_sessions_per_request: 1024,
            trace: true,
            flight_recorder_n: 256,
            metrics_interval_ms: 0,
            flight_dir: std::env::temp_dir(),
        }
    }
}

impl DaemonConfig {
    /// Reads `UAE_SERVE_ADDR` / `UAE_SERVE_BATCH` / `UAE_SERVE_MAX_LEN` /
    /// `UAE_SERVE_WORKERS` / `UAE_SERVE_QUEUE` / `UAE_SERVE_DEADLINE_MS` /
    /// `UAE_TRACE` / `UAE_FLIGHT_RECORDER_N` / `UAE_METRICS_INTERVAL_MS` /
    /// `UAE_FLIGHT_RECORDER_DIR` over the defaults. Unparsable or zero
    /// numeric values keep the default — a typo in a knob must not change
    /// admission semantics.
    pub fn from_env() -> DaemonConfig {
        let mut cfg = DaemonConfig::default();
        if let Ok(v) = std::env::var("UAE_SERVE_ADDR") {
            if !v.trim().is_empty() {
                cfg.addr = v.trim().to_string();
            }
        }
        let parse = |key: &str| -> Option<usize> {
            std::env::var(key)
                .ok()
                .and_then(|v| v.trim().parse::<usize>().ok())
                .filter(|&n| n > 0)
        };
        if let Some(n) = parse("UAE_SERVE_BATCH") {
            cfg.batch = n;
        }
        cfg.max_len = parse("UAE_SERVE_MAX_LEN");
        if let Some(n) = parse("UAE_SERVE_WORKERS") {
            cfg.workers = n;
        }
        if let Some(n) = parse("UAE_SERVE_QUEUE") {
            cfg.queue_capacity = n;
        }
        if let Some(n) = parse("UAE_SERVE_DEADLINE_MS") {
            cfg.default_deadline_ms = n.min(u32::MAX as usize) as u32;
        }
        if let Ok(v) = std::env::var("UAE_TRACE") {
            let v = v.trim().to_ascii_lowercase();
            cfg.trace = !matches!(v.as_str(), "0" | "false" | "off" | "no");
        }
        if let Some(n) = parse("UAE_FLIGHT_RECORDER_N") {
            cfg.flight_recorder_n = n;
        }
        if let Some(n) = parse("UAE_METRICS_INTERVAL_MS") {
            cfg.metrics_interval_ms = n as u64;
        }
        if let Ok(v) = std::env::var("UAE_FLIGHT_RECORDER_DIR") {
            if !v.trim().is_empty() {
                cfg.flight_dir = PathBuf::from(v.trim());
            }
        }
        cfg
    }
}

/// One immutable serving generation: the scorer built from a `.uaem`
/// artifact plus the schema requests are validated against. Workers clone
/// the `Arc<Generation>` per micro-batch, which is what makes hot-swap
/// draining observable through the refcount.
struct Generation {
    id: u64,
    schema: FeatureSchema,
    scorer: Scorer,
}

#[derive(Default)]
struct Stats {
    requests: AtomicU64,
    sessions: AtomicU64,
    events: AtomicU64,
    shed: AtomicU64,
    deadline_miss: AtomicU64,
    worker_restarts: AtomicU64,
    protocol_errors: AtomicU64,
    swaps: AtomicU64,
    swap_rollbacks: AtomicU64,
    traces_started: AtomicU64,
    traces_completed: AtomicU64,
    /// Traces excluded from the *stage* histograms (shed / protocol-error
    /// outcomes never reach a worker, so their all-zero stage rows are kept
    /// out — see [`Shared::close_trace`]). Exported so operators can
    /// reconcile `request_us.count == queue_wait_us.count + hist_excluded`.
    hist_excluded: AtomicU64,
}

/// The daemon's fixed-memory latency and value distributions: lock-free
/// atomic histograms recorded on the serve hot path, snapshot into
/// [`WireHist`] rows for `Stats` and [`HistStat`] rows for the periodic
/// `MetricsSnapshot` event. Value distributions (attention / propensity /
/// weight) are recorded in milli-units so the integer buckets resolve the
/// \[0, 1\] probability range.
struct Hists {
    request_us: AtomicHistogram,
    queue_wait_us: AtomicHistogram,
    batch_assemble_us: AtomicHistogram,
    score_us: AtomicHistogram,
    reply_write_us: AtomicHistogram,
    batch_sessions: AtomicHistogram,
    queue_depth: AtomicHistogram,
    attention_milli: AtomicHistogram,
    propensity_milli: AtomicHistogram,
    weight_milli: AtomicHistogram,
}

impl Hists {
    fn new() -> Hists {
        Hists {
            request_us: AtomicHistogram::new(),
            queue_wait_us: AtomicHistogram::new(),
            batch_assemble_us: AtomicHistogram::new(),
            score_us: AtomicHistogram::new(),
            reply_write_us: AtomicHistogram::new(),
            batch_sessions: AtomicHistogram::new(),
            queue_depth: AtomicHistogram::new(),
            attention_milli: AtomicHistogram::new(),
            propensity_milli: AtomicHistogram::new(),
            weight_milli: AtomicHistogram::new(),
        }
    }

    /// Nonempty histograms as `(name, summary)` rows, in a stable order.
    fn summaries(&self) -> Vec<(&'static str, uae_obs::HistogramSummary)> {
        [
            ("request_us", &self.request_us),
            ("queue_wait_us", &self.queue_wait_us),
            ("batch_assemble_us", &self.batch_assemble_us),
            ("score_us", &self.score_us),
            ("reply_write_us", &self.reply_write_us),
            ("batch_sessions", &self.batch_sessions),
            ("queue_depth", &self.queue_depth),
            ("attention_milli", &self.attention_milli),
            ("propensity_milli", &self.propensity_milli),
            ("weight_milli", &self.weight_milli),
        ]
        .into_iter()
        .filter(|(_, h)| h.count() > 0)
        .map(|(name, h)| (name, h.snapshot().summary()))
        .collect()
    }

    fn wire(&self) -> Vec<WireHist> {
        self.summaries()
            .iter()
            .map(|(name, s)| WireHist::from_summary(name, s))
            .collect()
    }

    fn stat_rows(&self) -> Vec<HistStat> {
        self.summaries()
            .iter()
            .map(|(name, s)| HistStat::from_summary(name, s))
            .collect()
    }
}

/// Everything a connection thread needs to close a request's trace after
/// the reply frame is on the wire.
struct TraceCtx {
    id: u64,
    enqueued: Instant,
    sessions: u64,
    events: u64,
    generation: u64,
    outcome: String,
    stages: StageTimes,
}

struct Shared {
    cfg: DaemonConfig,
    queue: ServeQueue,
    generation: RwLock<Arc<Generation>>,
    stats: Stats,
    shutdown: AtomicBool,
    fault: FaultPlan,
    /// Serializes concurrent swap requests (drain-then-activate must not
    /// interleave).
    swap_serial: Mutex<()>,
    obs: Option<Arc<uae_obs::Handle>>,
    started: Instant,
    trace_serial: AtomicU64,
    hists: Hists,
    recorder: FlightRecorder,
    dump_serial: AtomicU64,
    /// Sessions scored per feature-hash shard (one slot per worker). The
    /// micro-batcher groups each batch's sessions into contiguous hash
    /// ranges of the leading categorical feature — the same `mix64` space
    /// hashed embeddings bucket in — so a worker's embedding reads cluster
    /// per range. Occupancy shows whether traffic spreads across shards.
    shard_hits: Vec<AtomicU64>,
}

impl Shared {
    fn snapshot(&self) -> StatsSnapshot {
        let generation = self.generation.read().map(|g| g.id).unwrap_or(0);
        StatsSnapshot {
            ready: !self.shutdown.load(Ordering::Relaxed),
            generation,
            queue_depth: self.queue.depth() as u64,
            requests: self.stats.requests.load(Ordering::Relaxed),
            sessions: self.stats.sessions.load(Ordering::Relaxed),
            events: self.stats.events.load(Ordering::Relaxed),
            shed: self.stats.shed.load(Ordering::Relaxed),
            deadline_miss: self.stats.deadline_miss.load(Ordering::Relaxed),
            worker_restarts: self.stats.worker_restarts.load(Ordering::Relaxed),
            protocol_errors: self.stats.protocol_errors.load(Ordering::Relaxed),
            swaps: self.stats.swaps.load(Ordering::Relaxed),
            swap_rollbacks: self.stats.swap_rollbacks.load(Ordering::Relaxed),
            uptime_ms: self.started.elapsed().as_millis() as u64,
            snapshot_unix_ms: std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_millis() as u64)
                .unwrap_or(0),
            traces_started: self.stats.traces_started.load(Ordering::Relaxed),
            traces_completed: self.stats.traces_completed.load(Ordering::Relaxed),
            hist_excluded: self.stats.hist_excluded.load(Ordering::Relaxed),
            shard_occupancy: self
                .shard_hits
                .iter()
                .map(|s| s.load(Ordering::Relaxed))
                .collect(),
            hists: self.hists.wire(),
        }
    }

    fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::Relaxed);
        self.queue.close();
    }

    fn fault_event(&self, fault: &str, action: String, trace_id: Option<u64>) {
        uae_obs::emit(|| uae_obs::Event::ServeFault {
            fault: fault.to_string(),
            action,
            trace_id,
        });
    }

    /// Mints the next trace id (and counts the trace as started), or
    /// returns 0 when tracing is off.
    fn mint_trace(&self) -> u64 {
        if !self.cfg.trace {
            return 0;
        }
        self.stats.traces_started.fetch_add(1, Ordering::Relaxed);
        self.trace_serial.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Closes a trace: records its timings into the histograms, pushes the
    /// summary onto the flight-recorder ring, and counts it completed.
    /// Every minted trace must pass through here exactly once — the
    /// `traces_started == traces_completed` invariant is what lets clients
    /// assert zero orphaned traces.
    fn close_trace(&self, ctx: TraceCtx) {
        let total_us = ctx.enqueued.elapsed().as_micros() as u64;
        self.hists.request_us.record(total_us);
        // Shed and malformed requests never reach a worker; folding their
        // all-zero stage rows into the stage histograms would drag the
        // percentiles toward zero, so only traced *scoring* work lands there.
        if !matches!(ctx.outcome.as_str(), "shed" | "protocol_error") {
            self.hists.queue_wait_us.record(ctx.stages.queue_wait_us);
            self.hists
                .batch_assemble_us
                .record(ctx.stages.batch_assemble_us);
            self.hists.score_us.record(ctx.stages.score_us);
            self.hists.reply_write_us.record(ctx.stages.reply_write_us);
        } else {
            // Count the exclusion so `request_us.count` always reconciles
            // with `queue_wait_us.count + hist_excluded` in `Stats`.
            self.stats.hist_excluded.fetch_add(1, Ordering::Relaxed);
        }
        self.stats.traces_completed.fetch_add(1, Ordering::Relaxed);
        self.recorder.push(TraceSummary {
            id: ctx.id,
            sessions: ctx.sessions,
            events: ctx.events,
            generation: ctx.generation,
            outcome: ctx.outcome,
            total_us,
            stages: ctx.stages,
        });
    }
}

/// Runs `f` with the daemon's obs handle installed on this thread (so the
/// spawned thread joins the caller's telemetry stream), or bare if the
/// daemon was bound without telemetry.
fn run_with_obs<R>(obs: Option<Arc<uae_obs::Handle>>, f: impl FnOnce() -> R) -> R {
    match obs {
        Some(h) => uae_obs::with_handle(h, f),
        None => f(),
    }
}

/// The serving daemon. [`bind`](Daemon::bind) it, then [`run`](Daemon::run)
/// it (blocking until a `Shutdown` request drains the queue).
pub struct Daemon {
    shared: Arc<Shared>,
    listener: TcpListener,
    local_addr: SocketAddr,
}

impl Daemon {
    /// Builds the serving state from a frozen model and binds the listen
    /// socket (workers are spawned by [`run`](Daemon::run)). Captures the
    /// calling thread's obs handle so daemon threads emit into the same
    /// telemetry stream.
    pub fn bind(
        frozen: FrozenModel,
        cfg: DaemonConfig,
        fault: FaultPlan,
    ) -> Result<Daemon, UaeError> {
        let schema = frozen.schema.clone();
        let scorer = Scorer::with_config(
            frozen,
            ScorerConfig {
                batch_size: cfg.batch,
                max_len: cfg.max_len,
            },
        )?;
        let listener = TcpListener::bind(&cfg.addr).map_err(|e| UaeError::Unavailable {
            detail: format!("bind {}: {e}", cfg.addr),
        })?;
        let local_addr = listener.local_addr().map_err(|e| UaeError::Unavailable {
            detail: format!("local_addr: {e}"),
        })?;
        let queue = ServeQueue::new(cfg.queue_capacity);
        let recorder = FlightRecorder::new(cfg.flight_recorder_n);
        let shard_hits = (0..cfg.workers.max(1)).map(|_| AtomicU64::new(0)).collect();
        let shared = Arc::new(Shared {
            queue,
            generation: RwLock::new(Arc::new(Generation {
                id: 1,
                schema,
                scorer,
            })),
            stats: Stats::default(),
            shutdown: AtomicBool::new(false),
            fault,
            swap_serial: Mutex::new(()),
            obs: uae_obs::current_handle(),
            started: Instant::now(),
            trace_serial: AtomicU64::new(0),
            hists: Hists::new(),
            recorder,
            dump_serial: AtomicU64::new(0),
            shard_hits,
            cfg,
        });
        Ok(Daemon {
            shared,
            listener,
            local_addr,
        })
    }

    /// The bound listen address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Serves until a `Shutdown` request arrives, then drains the queue,
    /// joins every worker, metrics, and connection thread, and returns.
    pub fn run(self) -> Result<(), UaeError> {
        let shared = self.shared;
        let mut workers = Vec::with_capacity(shared.cfg.workers.max(1));
        for w in 0..shared.cfg.workers.max(1) {
            let sh = Arc::clone(&shared);
            let obs = sh.obs.clone();
            workers.push(
                std::thread::Builder::new()
                    .name(format!("uae-serve-worker-{w}"))
                    .spawn(move || run_with_obs(obs, || worker_loop(&sh)))
                    .map_err(|e| UaeError::Unavailable {
                        detail: format!("spawn worker: {e}"),
                    })?,
            );
        }
        let metrics = if shared.cfg.metrics_interval_ms > 0 {
            let sh = Arc::clone(&shared);
            let obs = sh.obs.clone();
            Some(
                std::thread::Builder::new()
                    .name("uae-serve-metrics".into())
                    .spawn(move || run_with_obs(obs, || metrics_loop(&sh)))
                    .map_err(|e| UaeError::Unavailable {
                        detail: format!("spawn metrics thread: {e}"),
                    })?,
            )
        } else {
            None
        };
        self.listener
            .set_nonblocking(true)
            .map_err(|e| UaeError::Unavailable {
                detail: format!("set_nonblocking: {e}"),
            })?;
        let mut conns: Vec<std::thread::JoinHandle<()>> = Vec::new();
        while !shared.shutdown.load(Ordering::Relaxed) {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    conns.retain(|h| !h.is_finished());
                    let sh = Arc::clone(&shared);
                    let obs = sh.obs.clone();
                    conns.push(std::thread::spawn(move || {
                        run_with_obs(obs, || handle_conn(&sh, stream))
                    }));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(POLL_INTERVAL);
                }
                Err(e) => {
                    // Transient accept failures (EMFILE, ECONNABORTED) must
                    // not take the daemon down; record and keep listening.
                    shared.fault_event("accept_error", format!("kept listening: {e}"), None);
                    std::thread::sleep(POLL_INTERVAL);
                }
            }
        }
        // Shutdown: the queue is closed; workers exit once the backlog
        // drains, and every queued job still receives its reply first.
        for h in workers {
            let _ = h.join();
        }
        if let Some(h) = metrics {
            let _ = h.join();
        }
        for h in conns {
            let _ = h.join();
        }
        Ok(())
    }
}

/// Periodic `MetricsSnapshot` emitter: one event per interval plus a final
/// one at shutdown, so even a short-lived daemon leaves a snapshot behind.
fn metrics_loop(shared: &Shared) {
    let interval = Duration::from_millis(shared.cfg.metrics_interval_ms.max(1));
    let mut next = Instant::now() + interval;
    while !shared.shutdown.load(Ordering::Relaxed) {
        std::thread::sleep(POLL_INTERVAL.min(interval));
        if Instant::now() < next {
            continue;
        }
        next = Instant::now() + interval;
        emit_metrics(shared);
    }
    emit_metrics(shared);
}

fn emit_metrics(shared: &Shared) {
    for (i, slot) in shared.shard_hits.iter().enumerate() {
        uae_obs::gauge(
            &format!("serve.shard_occupancy.{i}"),
            slot.load(Ordering::Relaxed) as f64,
        );
    }
    uae_obs::emit(|| {
        let s = shared.snapshot();
        uae_obs::Event::MetricsSnapshot {
            uptime_ms: s.uptime_ms,
            generation: s.generation,
            queue_depth: s.queue_depth,
            requests: s.requests,
            shed: s.shed,
            deadline_miss: s.deadline_miss,
            traces_started: s.traces_started,
            traces_completed: s.traces_completed,
            hists: shared.hists.stat_rows(),
        }
    });
}

/// Writes the flight-recorder ring to `<flight_dir>/uae-flight-<pid>-<n>.jsonl`
/// and returns the path and trace count. Called on worker panic, swap
/// rollback, and `serve-ctl dump` — the three moments an operator wants
/// the requests that led up to the fault.
fn dump_recorder(shared: &Shared, reason: &str) -> Result<(String, u64), UaeError> {
    let serial = shared.dump_serial.fetch_add(1, Ordering::Relaxed);
    let path = shared
        .cfg
        .flight_dir
        .join(format!("uae-flight-{}-{serial}.jsonl", std::process::id()));
    let generation = shared.generation.read().map(|g| g.id).unwrap_or(0);
    let manifest = uae_obs::Manifest {
        run: format!("flight-recorder:{reason}"),
        version: env!("CARGO_PKG_VERSION").into(),
        seed: 0,
        threads: shared.cfg.workers as u64,
        kernel_mode: "serve".into(),
        config: vec![
            ("reason".into(), reason.into()),
            ("generation".into(), generation.to_string()),
            ("capacity".into(), shared.recorder.capacity().to_string()),
        ],
    };
    let n = shared
        .recorder
        .dump_jsonl(&path, manifest)
        .map_err(|e| UaeError::Unavailable {
            detail: format!("flight-recorder dump: {e}"),
        })?;
    Ok((path.display().to_string(), n as u64))
}

/// A neutral truth block for wire-built events — inference never reads it
/// (the forward consumes only `cat`/`dense`/`e`), it just satisfies the
/// `Dataset` shape.
const WIRE_TRUTH: Truth = Truth {
    attention: false,
    attention_prob: 0.0,
    propensity: 1.0,
    preference: false,
    preference_prob: 0.0,
};

fn to_session(ws: &WireSession) -> Session {
    Session {
        user: 0,
        day: 0,
        events: ws
            .events
            .iter()
            .map(|ev| Event {
                song: ev.cat.first().copied().unwrap_or(0),
                cat: ev.cat.clone(),
                dense: ev.dense.clone(),
                feedback: if ev.active {
                    Feedback::Like
                } else {
                    Feedback::AutoPlay
                },
                truth: WIRE_TRUTH,
            })
            .collect(),
    }
}

/// Maps a session to its feature-hash shard: `mix64` of the first event's
/// leading categorical id, range-partitioned over `[0, shards)`. The same
/// mixer hashed embeddings bucket with, so a shard's sessions cluster in
/// embedding-table row space and a worker's gathers stay range-local.
fn shard_of(ws: &WireSession, shards: usize) -> usize {
    let key = ws
        .events
        .first()
        .and_then(|e| e.cat.first())
        .copied()
        .unwrap_or(0) as u64;
    let h = uae_nn::mix64(key ^ uae_nn::DEFAULT_HASH_SEED);
    ((h as u128 * shards as u128) >> 64) as usize
}

/// Scores every session of every job in one coalesced request and splits
/// the flat outputs back per job. Sessions are grouped into contiguous
/// feature-hash shard ranges before the forward (embedding reads cluster
/// per range; occupancy lands in `shard_hits`), then scattered back to
/// request order. Per-session scores do not depend on batch composition
/// *or* order (row-independent forward), so both the coalescing and the
/// shard regrouping are bit-invisible to clients. Returns the batch-level
/// assemble and score stage times alongside the per-job outputs.
fn score_jobs(
    gen: &Generation,
    jobs: &[Job],
    shard_hits: &[AtomicU64],
) -> (Vec<Vec<SessionScores>>, u64, u64) {
    let assemble_started = Instant::now();
    let wire_sessions: Vec<&WireSession> = jobs.iter().flat_map(|j| j.sessions.iter()).collect();
    let shards = shard_hits.len().max(1);
    let keys: Vec<usize> = wire_sessions
        .iter()
        .map(|ws| shard_of(ws, shards))
        .collect();
    // Stable sort: within a shard, request order is preserved.
    let mut order: Vec<usize> = (0..wire_sessions.len()).collect();
    order.sort_by_key(|&i| keys[i]);
    for &i in &order {
        if let Some(slot) = shard_hits.get(keys[i]) {
            slot.fetch_add(1, Ordering::Relaxed);
        }
    }
    let sessions: Vec<Session> = order
        .iter()
        .map(|&i| to_session(wire_sessions[i]))
        .collect();
    let indices: Vec<usize> = (0..sessions.len()).collect();
    let ds = Dataset {
        name: "wire".into(),
        schema: gen.schema.clone(),
        sessions,
    };
    let assemble_us = assemble_started.elapsed().as_micros() as u64;
    let score_started = Instant::now();
    let out = gen.scorer.score(&ds, &indices);
    let score_us = score_started.elapsed().as_micros() as u64;
    // Scatter the flat shard-ordered outputs back to request order via the
    // inverse permutation, then split per job.
    let mut scattered: Vec<Option<SessionScores>> = vec![None; wire_sessions.len()];
    let mut off = 0usize;
    for &i in &order {
        let n = wire_sessions[i].events.len();
        scattered[i] = Some(SessionScores {
            attention: out.attention[off..off + n].to_vec(),
            propensity: out.propensity[off..off + n].to_vec(),
            weights: out.weights[off..off + n].to_vec(),
        });
        off += n;
    }
    let mut scattered = scattered.into_iter();
    let mut result = Vec::with_capacity(jobs.len());
    for job in jobs {
        result.push(
            scattered
                .by_ref()
                .take(job.sessions.len())
                .map(|s| s.expect("every session scored exactly once"))
                .collect(),
        );
    }
    (result, assemble_us, score_us)
}

fn miss(shared: &Shared, job: &Job, now: Instant, stages: StageTimes) {
    shared.stats.deadline_miss.fetch_add(1, Ordering::Relaxed);
    uae_obs::counter("serve.daemon.deadline_miss", 1);
    shared.fault_event(
        "deadline_miss",
        format!(
            "answered with typed DeadlineExceeded after {} ms against a {} ms budget [{}]",
            job.waited_ms(now),
            job.deadline_ms,
            stages.render(),
        ),
        (job.trace_id != 0).then_some(job.trace_id),
    );
    let _ = job.reply.send((
        Err(UaeError::DeadlineExceeded {
            waited_ms: job.waited_ms(now),
            budget_ms: u64::from(job.deadline_ms),
        }),
        stages,
    ));
}

fn panic_detail(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// One scorer worker: pop a micro-batch, drop expired jobs with typed
/// misses, score the rest under `catch_unwind`, reply, repeat. A panic
/// answers the batch's jobs with [`UaeError::WorkerPanic`], dumps the
/// flight recorder, sleeps a deterministic [`Backoff`] step, and keeps
/// serving ("restart" = the isolation boundary, not a new thread).
fn worker_loop(shared: &Shared) {
    let mut backoff = Backoff::for_worker_restart();
    while let Some(jobs) = shared.queue.pop_batch(shared.cfg.batch) {
        uae_obs::gauge("serve.queue_depth", shared.queue.depth() as f64);
        let now = Instant::now();
        let wait_us = |job: &Job| now.saturating_duration_since(job.enqueued).as_micros() as u64;
        let mut live = Vec::with_capacity(jobs.len());
        for job in jobs {
            if job.expired(now) {
                let stages = StageTimes {
                    queue_wait_us: wait_us(&job),
                    ..StageTimes::default()
                };
                miss(shared, &job, now, stages);
            } else {
                live.push(job);
            }
        }
        if live.is_empty() {
            continue;
        }
        let gen = match shared.generation.read() {
            Ok(g) => Arc::clone(&*g),
            Err(_) => break, // poisoned: a swap panicked holding the lock
        };
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            shared.fault.before_batch();
            score_jobs(&gen, &live, &shared.shard_hits)
        }));
        match outcome {
            Ok((per_job, assemble_us, score_us)) => {
                backoff.reset();
                let done = Instant::now();
                if shared.cfg.trace {
                    let total: u64 = live.iter().map(|j| j.sessions.len() as u64).sum();
                    shared.hists.batch_sessions.record(total);
                }
                for (job, scored) in live.iter().zip(per_job) {
                    let stages = StageTimes {
                        queue_wait_us: wait_us(job),
                        batch_assemble_us: assemble_us,
                        score_us,
                        reply_write_us: 0,
                    };
                    // Re-check after scoring: a stalled forward (slow-scorer
                    // fault, overload) must surface as a typed miss too.
                    if job.expired(done) {
                        miss(shared, job, done, stages);
                        continue;
                    }
                    let events: usize = scored.iter().map(|s| s.attention.len()).sum();
                    if shared.cfg.trace {
                        for s in &scored {
                            for &v in &s.attention {
                                shared.hists.attention_milli.record(milli(v));
                            }
                            for &v in &s.propensity {
                                shared.hists.propensity_milli.record(milli(v));
                            }
                            for &v in &s.weights {
                                shared.hists.weight_milli.record(milli(v));
                            }
                        }
                    }
                    shared.stats.requests.fetch_add(1, Ordering::Relaxed);
                    shared
                        .stats
                        .sessions
                        .fetch_add(job.sessions.len() as u64, Ordering::Relaxed);
                    shared
                        .stats
                        .events
                        .fetch_add(events as u64, Ordering::Relaxed);
                    uae_obs::counter("serve.daemon.requests", 1);
                    let _ = job.reply.send((Ok((gen.id, scored)), stages));
                }
            }
            Err(payload) => {
                let detail = panic_detail(payload);
                shared.stats.worker_restarts.fetch_add(1, Ordering::Relaxed);
                let delay = backoff.next_delay();
                uae_obs::counter("serve.daemon.worker_restarts", 1);
                let dump = match dump_recorder(shared, "worker_panic") {
                    Ok((path, n)) => format!("flight dump of {n} traces at {path}"),
                    Err(e) => format!("flight dump failed: {e}"),
                };
                shared.fault_event(
                    "worker_panic",
                    format!(
                        "worker restarted after {} ms backoff (attempt {}); {dump}: {detail}",
                        delay.as_millis(),
                        backoff.attempt(),
                    ),
                    None,
                );
                for job in &live {
                    let stages = StageTimes {
                        queue_wait_us: wait_us(job),
                        ..StageTimes::default()
                    };
                    let _ = job.reply.send((
                        Err(UaeError::WorkerPanic {
                            detail: detail.clone(),
                        }),
                        stages,
                    ));
                }
                std::thread::sleep(delay);
            }
        }
    }
}

/// Handles a `Swap` request: decode the new artifact, reject-and-rollback
/// on any failure, otherwise activate the next generation and wait for
/// in-flight batches to drain off the old one.
fn handle_swap(shared: &Shared, path: &str) -> Result<u64, UaeError> {
    let _serial = shared
        .swap_serial
        .lock()
        .map_err(|_| UaeError::Unavailable {
            detail: "swap lock poisoned".into(),
        })?;
    let current = shared
        .generation
        .read()
        .map_err(|_| UaeError::Unavailable {
            detail: "generation lock poisoned".into(),
        })?
        .clone();
    let reject = |detail: String| -> UaeError {
        shared.stats.swap_rollbacks.fetch_add(1, Ordering::Relaxed);
        uae_obs::counter("serve.daemon.swap_rollbacks", 1);
        uae_obs::emit(|| uae_obs::Event::Swap {
            generation: current.id,
            outcome: format!("rolled_back: {detail}"),
        });
        let dump = match dump_recorder(shared, "swap_rollback") {
            Ok((path, n)) => format!("; flight dump of {n} traces at {path}"),
            Err(e) => format!("; flight dump failed: {e}"),
        };
        shared.fault_event(
            "swap_decode_failure",
            format!("kept last-good generation{dump}"),
            None,
        );
        UaeError::SwapRejected { detail }
    };
    let frozen = match FrozenModel::read_from(Path::new(path)) {
        Ok(f) => f,
        Err(e) => return Err(reject(e.to_string())),
    };
    if frozen.schema != current.schema {
        return Err(reject(format!(
            "artifact schema ({} cat fields, {} dense) differs from serving schema ({} cat fields, {} dense)",
            frozen.schema.num_cat_fields(),
            frozen.schema.num_dense(),
            current.schema.num_cat_fields(),
            current.schema.num_dense(),
        )));
    }
    let schema = frozen.schema.clone();
    let scorer = match Scorer::with_config(
        frozen,
        ScorerConfig {
            batch_size: shared.cfg.batch,
            max_len: shared.cfg.max_len,
        },
    ) {
        Ok(s) => s,
        Err(e) => return Err(reject(e.to_string())),
    };
    let next = Arc::new(Generation {
        id: current.id + 1,
        schema,
        scorer,
    });
    let next_id = next.id;
    drop(current); // the clone above must not count against the drain
    let old = {
        let mut slot = shared
            .generation
            .write()
            .map_err(|_| UaeError::Unavailable {
                detail: "generation lock poisoned".into(),
            })?;
        std::mem::replace(&mut *slot, next)
    };
    // Drain: workers hold an Arc clone per in-flight batch; once the old
    // generation's count returns to 1 every batch scored by it has replied.
    let drain_start = Instant::now();
    while Arc::strong_count(&old) > 1 {
        if drain_start.elapsed() > SWAP_DRAIN_BUDGET {
            shared.fault_event(
                "swap_drain_timeout",
                "activated new generation with old-generation batches still in flight".into(),
                None,
            );
            break;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    shared.stats.swaps.fetch_add(1, Ordering::Relaxed);
    uae_obs::counter("serve.daemon.swaps", 1);
    uae_obs::gauge("serve.swap_generation", next_id as f64);
    uae_obs::emit(|| uae_obs::Event::Swap {
        generation: next_id,
        outcome: "active".into(),
    });
    Ok(next_id)
}

/// A score value in milli-units for the value-distribution histograms
/// (clamped at zero; probabilities and importance weights are nonnegative).
fn milli(v: f32) -> u64 {
    (f64::from(v).max(0.0) * 1000.0) as u64
}

fn protocol_error(shared: &Shared, err: &UaeError, dropped_conn: bool) {
    shared.stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
    uae_obs::counter("serve.daemon.protocol_errors", 1);
    let action = if dropped_conn {
        format!("typed error reply, connection dropped (framing lost): {err}")
    } else {
        format!("typed error reply, connection kept: {err}")
    };
    shared.fault_event("protocol_error", action, None);
}

/// Handles one `Score` request end to end on the connection thread:
/// mint a trace, validate, admit (or shed), then block on the reply
/// channel until a worker answers. Returns the reply plus the open trace
/// context — the connection loop closes the trace after timing the
/// reply-write stage.
fn handle_score(
    shared: &Shared,
    deadline_ms: u32,
    sessions: Vec<WireSession>,
) -> (Result<Response, UaeError>, Option<TraceCtx>) {
    let trace_id = shared.mint_trace();
    let mut ctx = shared.cfg.trace.then(|| TraceCtx {
        id: trace_id,
        enqueued: Instant::now(),
        sessions: sessions.len() as u64,
        events: sessions.iter().map(|s| s.events.len() as u64).sum(),
        generation: 0,
        outcome: "ok".into(),
        stages: StageTimes::default(),
    });
    let schema = match shared.generation.read() {
        Ok(g) => g.schema.clone(),
        Err(_) => {
            if let Some(c) = &mut ctx {
                c.outcome = "error".into();
            }
            return (
                Err(UaeError::Unavailable {
                    detail: "generation lock poisoned".into(),
                }),
                ctx,
            );
        }
    };
    if let Err(e) = wire::validate_sessions(
        &sessions,
        &schema,
        shared.cfg.max_sessions_per_request,
        shared.cfg.max_len,
    ) {
        protocol_error(shared, &e, false);
        if let Some(c) = &mut ctx {
            c.outcome = "protocol_error".into();
        }
        return (Err(e), ctx);
    }
    let budget = if deadline_ms == 0 {
        shared.cfg.default_deadline_ms
    } else {
        deadline_ms
    };
    let (tx, rx) = sync_channel(1);
    let job = Job {
        trace_id,
        sessions,
        enqueued: Instant::now(),
        deadline_ms: budget,
        reply: tx,
    };
    if let Err(e) = shared.queue.push(job) {
        if matches!(e, UaeError::Overload { .. }) {
            shared.stats.shed.fetch_add(1, Ordering::Relaxed);
            uae_obs::counter("serve.daemon.shed", 1);
            shared.fault_event(
                "overload_shed",
                "request answered with typed Overload (queue at capacity)".into(),
                (trace_id != 0).then_some(trace_id),
            );
            if let Some(c) = &mut ctx {
                c.outcome = "shed".into();
            }
        } else if let Some(c) = &mut ctx {
            c.outcome = "error".into();
        }
        return (Err(e), ctx);
    }
    let depth = shared.queue.depth();
    if shared.cfg.trace {
        shared.hists.queue_depth.record(depth as u64);
    }
    uae_obs::gauge("serve.queue_depth", depth as f64);
    match rx.recv() {
        Ok((Ok((generation, scored)), stages)) => {
            if let Some(c) = &mut ctx {
                c.generation = generation;
                c.stages = stages;
            }
            (
                Ok(Response::Scored {
                    generation,
                    trace_id,
                    sessions: scored,
                }),
                ctx,
            )
        }
        Ok((Err(e), stages)) => {
            if let Some(c) = &mut ctx {
                c.stages = stages;
                c.outcome = match &e {
                    UaeError::DeadlineExceeded { .. } => "deadline_miss".into(),
                    UaeError::WorkerPanic { .. } => "worker_panic".into(),
                    _ => "error".into(),
                };
            }
            (Err(e), ctx)
        }
        Err(_) => {
            if let Some(c) = &mut ctx {
                c.outcome = "error".into();
            }
            (
                Err(UaeError::Unavailable {
                    detail: "worker dropped the reply channel".into(),
                }),
                ctx,
            )
        }
    }
}

/// One connection: peek-poll for frames (so shutdown is noticed within one
/// poll interval), decode, dispatch, reply. Malformed frames get a typed
/// error; if framing itself is lost the connection is dropped after the
/// error reply. Score requests carry an open trace across the dispatch;
/// the trace is closed here once the reply frame is written (or the write
/// fails), so every minted trace completes exactly once.
fn handle_conn(shared: &Shared, stream: TcpStream) {
    let mut stream = stream;
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    loop {
        if shared.shutdown.load(Ordering::Relaxed) {
            return;
        }
        // Wait for the next frame without holding a blocking read, so the
        // shutdown flag is honored on idle connections.
        let mut probe = [0u8; 1];
        match stream.peek(&mut probe) {
            Ok(0) => return, // clean EOF
            Ok(_) => {}
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => return,
        }
        // A frame has started arriving; give the peer a generous window to
        // finish writing it before a stalled read counts as a violation.
        let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
        let payload = match wire::read_frame(&mut stream) {
            Ok(Some(p)) => p,
            Ok(None) => return,
            Err(e) => {
                // Mid-frame EOF / oversized length / stalled write: the
                // stream position is untrustworthy, so answer and drop.
                protocol_error(shared, &e, true);
                let _ = wire::write_frame(&mut stream, &wire::encode_error(&e));
                return;
            }
        };
        let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
        let (reply, trace) = match wire::decode_request(&payload) {
            Err(e) => {
                // The frame boundary held; the connection can continue.
                protocol_error(shared, &e, false);
                (Err(e), None)
            }
            Ok(Request::Ping) => (Ok(Response::Pong), None),
            Ok(Request::Stats) => (Ok(Response::Stats(shared.snapshot())), None),
            Ok(Request::Score {
                deadline_ms,
                sessions,
            }) => handle_score(shared, deadline_ms, sessions),
            Ok(Request::Swap { path }) => (
                handle_swap(shared, &path).map(|generation| Response::Swapped { generation }),
                None,
            ),
            Ok(Request::Dump) => (
                dump_recorder(shared, "serve_ctl_dump")
                    .map(|(path, traces)| Response::Dumped { path, traces }),
                None,
            ),
            Ok(Request::Shutdown) => {
                let _ =
                    wire::write_frame(&mut stream, &wire::encode_response(&Response::ShuttingDown));
                shared.begin_shutdown();
                return;
            }
        };
        let frame = match &reply {
            Ok(resp) => wire::encode_response(resp),
            Err(e) => wire::encode_error(e),
        };
        let write_started = Instant::now();
        let wrote = wire::write_frame(&mut stream, &frame);
        if let Some(mut ctx) = trace {
            ctx.stages.reply_write_us = write_started.elapsed().as_micros() as u64;
            shared.close_trace(ctx);
        }
        if wrote.is_err() {
            return; // peer went away mid-reply
        }
    }
}
