//! Server-side fault injection for the chaos harness.
//!
//! A [`FaultPlan`] is read once at daemon start from `UAE_FAULT_*` env
//! vars (or built directly by tests) and consulted by the scorer workers.
//! Faults are *injected inside* the panic-isolation / deadline machinery,
//! so the chaos harness exercises exactly the paths real failures take:
//!
//! | knob | effect |
//! |------|--------|
//! | `UAE_FAULT_SLOW_SCORER_MS` | every scoring batch stalls this long first (drives deadline misses) |
//! | `UAE_FAULT_PANIC_EVERY`    | every Nth micro-batch panics inside the worker (drives restart + typed `WorkerPanic` responses) |
//!
//! Client-side faults (malformed frames, truncated frames, mid-request
//! disconnects, corrupt swap artifacts) are driven by the load generator's
//! chaos mode (`uae_eval::loadgen`) and the CI chaos step — the daemon
//! cannot inject those against itself.

use std::sync::atomic::{AtomicU64, Ordering};

/// Which faults the daemon's workers should inject, and how often.
#[derive(Debug, Default)]
pub struct FaultPlan {
    /// Stall every scoring batch this many milliseconds before scoring.
    pub slow_scorer_ms: u64,
    /// Panic inside the worker on every Nth micro-batch (1-based: the
    /// Nth, 2Nth, … batches panic). `0` disables.
    pub panic_every: u64,
    batches: AtomicU64,
}

impl FaultPlan {
    /// No injected faults (the production default).
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// A plan with explicit knob values — what tests and the chaos
    /// harness use instead of env vars, so faults cannot leak between
    /// concurrently running tests.
    pub fn with(slow_scorer_ms: u64, panic_every: u64) -> FaultPlan {
        FaultPlan {
            slow_scorer_ms,
            panic_every,
            batches: AtomicU64::new(0),
        }
    }

    /// Reads `UAE_FAULT_SLOW_SCORER_MS` / `UAE_FAULT_PANIC_EVERY`.
    /// Unparsable values mean "disabled" — a typo in a chaos knob must not
    /// take the daemon down.
    pub fn from_env() -> FaultPlan {
        let parse = |key: &str| -> u64 {
            std::env::var(key)
                .ok()
                .and_then(|v| v.trim().parse::<u64>().ok())
                .unwrap_or(0)
        };
        FaultPlan {
            slow_scorer_ms: parse("UAE_FAULT_SLOW_SCORER_MS"),
            panic_every: parse("UAE_FAULT_PANIC_EVERY"),
            batches: AtomicU64::new(0),
        }
    }

    /// True when any fault is armed (lets the worker skip the bookkeeping
    /// entirely in production).
    pub fn armed(&self) -> bool {
        self.slow_scorer_ms > 0 || self.panic_every > 0
    }

    /// Called by a worker at the top of every micro-batch: applies the
    /// slow-scorer stall, then panics if this batch is scheduled to. The
    /// panic happens inside the worker's `catch_unwind` scope.
    pub fn before_batch(&self) {
        if !self.armed() {
            return;
        }
        if self.slow_scorer_ms > 0 {
            std::thread::sleep(std::time::Duration::from_millis(self.slow_scorer_ms));
        }
        if self.panic_every > 0 {
            let n = self.batches.fetch_add(1, Ordering::Relaxed) + 1;
            if n.is_multiple_of(self.panic_every) {
                panic!(
                    "injected fault: UAE_FAULT_PANIC_EVERY={} (batch {n})",
                    self.panic_every
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_plan_is_a_noop() {
        let plan = FaultPlan::none();
        assert!(!plan.armed());
        plan.before_batch(); // must not panic or sleep
    }

    #[test]
    fn panic_every_hits_exactly_the_nth_batches() {
        let plan = FaultPlan {
            panic_every: 3,
            ..FaultPlan::default()
        };
        assert!(plan.armed());
        let mut outcomes = Vec::new();
        for _ in 0..6 {
            outcomes.push(
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| plan.before_batch()))
                    .is_err(),
            );
        }
        assert_eq!(outcomes, vec![false, false, true, false, false, true]);
    }
}
