//! End-to-end load-generator runs against an in-process serving daemon:
//! the zero-drop accounting contract under clean load, under chaos
//! injection, and under deliberate overload.

use std::net::SocketAddr;
use std::thread::JoinHandle;

use uae_core::{Uae, UaeConfig};
use uae_data::{generate, Dataset, SimConfig};
use uae_eval::{run_loadgen, LoadgenConfig};
use uae_runtime::UaeError;
use uae_serve::{Daemon, DaemonConfig, FaultPlan, FrozenModel, ServeClient};

fn start_daemon(
    ds: &Dataset,
    cfg: DaemonConfig,
    fault: FaultPlan,
) -> (SocketAddr, JoinHandle<Result<(), UaeError>>) {
    let uae_cfg = UaeConfig {
        gru_hidden: 4,
        mlp_hidden: vec![4],
        ..UaeConfig::default()
    };
    let uae = Uae::new(&ds.schema, uae_cfg);
    let frozen = FrozenModel::from_uae(&uae, &ds.schema, 15.0);
    let daemon = Daemon::bind(frozen, cfg, fault).expect("bind on port 0");
    let addr = daemon.local_addr();
    let handle = std::thread::spawn(move || daemon.run());
    (addr, handle)
}

fn shutdown(addr: SocketAddr, handle: JoinHandle<Result<(), UaeError>>) {
    ServeClient::connect(&addr.to_string())
        .expect("connect for shutdown")
        .shutdown()
        .expect("daemon acknowledges shutdown");
    handle.join().expect("run() thread").expect("run() ok");
}

#[test]
fn clean_load_is_fully_accounted_with_sane_latencies() {
    let ds = generate(&SimConfig::tiny(), 41);
    let (addr, handle) = start_daemon(&ds, DaemonConfig::default(), FaultPlan::none());

    let cfg = LoadgenConfig {
        addr: addr.to_string(),
        clients: 3,
        requests_per_client: 10,
        sessions_per_request: 2,
        ..LoadgenConfig::default()
    };
    let report = run_loadgen(&cfg, &ds).expect("load run completes");
    assert!(report.all_accounted(), "dropped requests: {report:?}");
    assert_eq!(report.sent, 30);
    assert_eq!(
        report.ok, 30,
        "clean load must score everything: {report:?}"
    );
    assert!(report.events_scored > 0);
    assert_eq!(report.generations_seen, vec![1]);
    assert!(report.p50_ms <= report.p99_ms);
    assert!(report.p99_ms <= report.max_ms);
    assert!(report.events_per_sec > 0.0);
    shutdown(addr, handle);
}

#[test]
fn chaos_mode_injects_faults_without_breaking_the_accounting() {
    let ds = generate(&SimConfig::tiny(), 41);
    let (addr, handle) = start_daemon(&ds, DaemonConfig::default(), FaultPlan::none());

    let cfg = LoadgenConfig {
        addr: addr.to_string(),
        clients: 2,
        requests_per_client: 25, // long enough for both chaos cadences to fire
        sessions_per_request: 2,
        chaos: true,
        ..LoadgenConfig::default()
    };
    let report = run_loadgen(&cfg, &ds).expect("chaos run completes");
    assert!(report.all_accounted(), "dropped requests: {report:?}");
    assert_eq!(
        report.ok, report.sent,
        "chaos must not corrupt good requests"
    );
    assert!(report.chaos_injected > 0, "chaos cadence never fired");
    assert_eq!(
        report.chaos_answered, report.chaos_injected,
        "a malformed frame went unanswered: {report:?}"
    );
    assert!(report.chaos_disconnects > 0);
    shutdown(addr, handle);
}

#[test]
fn overload_sheds_are_classified_not_dropped() {
    let ds = generate(&SimConfig::tiny(), 41);
    // One worker stalling 60 ms per batch behind a 2-session queue, hit by
    // 6 concurrent clients: a large fraction of the load must shed, and
    // every shed must be a classified answer.
    let daemon_cfg = DaemonConfig {
        workers: 1,
        batch: 1,
        queue_capacity: 2,
        ..DaemonConfig::default()
    };
    let fault = FaultPlan::with(60, 0);
    let (addr, handle) = start_daemon(&ds, daemon_cfg, fault);

    let cfg = LoadgenConfig {
        addr: addr.to_string(),
        clients: 6,
        requests_per_client: 5,
        sessions_per_request: 1,
        ..LoadgenConfig::default()
    };
    let report = run_loadgen(&cfg, &ds).expect("overload run completes");
    assert!(report.all_accounted(), "dropped requests: {report:?}");
    assert_eq!(report.sent, 30);
    assert!(report.ok >= 1, "overload starved the daemon completely");
    assert!(
        report.shed >= 1,
        "6 closed-loop clients against a 2-deep queue never shed: {report:?}"
    );
    shutdown(addr, handle);
}
