//! Fig. 5: convergence curves of DCN-V2 with and without UAE.
//!
//! Trains both variants for a fixed number of epochs (no early stopping),
//! over several seeds, and reports the per-epoch mean train/validation AUC
//! with 95% t-distribution confidence half-widths — exactly the quantities
//! plotted in the paper's Figure 5.

use uae_metrics::{confidence_half_width, mean};
use uae_models::{ModelKind, TrainConfig};

use crate::harness::{over_seeds_isolated, prepare, AttentionMethod, HarnessConfig, Preset};
use crate::table::TextTable;

/// One epoch's aggregate across seeds.
#[derive(Debug, Clone, Copy)]
pub struct EpochPoint {
    pub epoch: usize,
    pub train_auc_mean: f64,
    pub train_auc_ci95: f64,
    pub val_auc_mean: f64,
    pub val_auc_ci95: f64,
}

/// Curves for one variant (Base or +UAE).
#[derive(Debug, Clone)]
pub struct ConvergenceCurve {
    pub variant: &'static str,
    pub points: Vec<EpochPoint>,
}

/// The Fig. 5 experiment output.
#[derive(Debug, Clone)]
pub struct Convergence {
    pub base: ConvergenceCurve,
    pub uae: ConvergenceCurve,
    /// Per-seed fault report from the panic-isolated fan-out.
    pub faults: Vec<String>,
}

/// Runs the convergence study on the Product preset (as in the paper) with
/// `epochs` fixed epochs per run.
pub fn run_convergence(cfg: &HarnessConfig, epochs: usize) -> Convergence {
    let data = prepare(Preset::Product, cfg);
    let fixed = HarnessConfig {
        train: TrainConfig {
            epochs,
            early_stop_patience: None,
            ..cfg.train.clone()
        },
        ..cfg.clone()
    };
    // seed → (base history, uae history) of (train_auc, val_auc) per epoch
    type SeedSeries = (Vec<(f64, f64)>, Vec<(f64, f64)>);
    let fan = over_seeds_isolated(&cfg.seeds, |seed| {
        let base = crate::harness::run_model(ModelKind::DcnV2, None, &data, &fixed, seed);
        let w = AttentionMethod::Uae
            .weights(&data, &fixed, seed)
            .expect("weights");
        let ours = crate::harness::run_model(ModelKind::DcnV2, Some(&w), &data, &fixed, seed);
        let series = |report: &uae_models::TrainReport| -> Vec<(f64, f64)> {
            report
                .history
                .iter()
                .map(|r| (r.train_auc.unwrap_or(0.5), r.val_auc.unwrap_or(0.5)))
                .collect()
        };
        (series(&base.report), series(&ours.report))
    });
    let faults = fan.fault_report();
    let per_seed = fan.values();

    let collect = |pick: &dyn Fn(&SeedSeries) -> &Vec<(f64, f64)>, variant: &'static str| {
        let mut points = Vec::with_capacity(epochs);
        for epoch in 0..epochs {
            let train: Vec<f64> = per_seed
                .iter()
                .filter_map(|s| pick(s).get(epoch).map(|&(t, _)| t))
                .collect();
            let val: Vec<f64> = per_seed
                .iter()
                .filter_map(|s| pick(s).get(epoch).map(|&(_, v)| v))
                .collect();
            points.push(EpochPoint {
                epoch,
                train_auc_mean: mean(&train),
                train_auc_ci95: confidence_half_width(&train, 0.95),
                val_auc_mean: mean(&val),
                val_auc_ci95: confidence_half_width(&val, 0.95),
            });
        }
        ConvergenceCurve { variant, points }
    };
    Convergence {
        base: collect(&|s| &s.0, "DCN-V2"),
        uae: collect(&|s| &s.1, "DCN-V2 + UAE"),
        faults,
    }
}

impl Convergence {
    /// Renders the two curves as the series behind Fig. 5's two panels.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let mut t = TextTable::new(&[
            "Epoch",
            "Base train",
            "±95%",
            "UAE train",
            "±95%",
            "Base val",
            "±95%",
            "UAE val",
            "±95%",
        ]);
        for (b, u) in self.base.points.iter().zip(&self.uae.points) {
            t.add_row(vec![
                format!("{}", b.epoch + 1),
                format!("{:.4}", b.train_auc_mean),
                format!("{:.4}", b.train_auc_ci95),
                format!("{:.4}", u.train_auc_mean),
                format!("{:.4}", u.train_auc_ci95),
                format!("{:.4}", b.val_auc_mean),
                format!("{:.4}", b.val_auc_ci95),
                format!("{:.4}", u.val_auc_mean),
                format!("{:.4}", u.val_auc_ci95),
            ]);
        }
        out.push_str(&t.render());
        out
    }

    /// The paper's headline claims about Fig. 5: the UAE arm ends at a
    /// higher validation AUC.
    pub fn uae_ends_higher(&self) -> bool {
        match (self.base.points.last(), self.uae.points.last()) {
            (Some(b), Some(u)) => u.val_auc_mean > b.val_auc_mean,
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn convergence_produces_full_curves() {
        let mut cfg = HarnessConfig::fast();
        cfg.data_scale = 0.05;
        let conv = run_convergence(&cfg, 2);
        assert_eq!(conv.base.points.len(), 2);
        assert_eq!(conv.uae.points.len(), 2);
        for p in conv.base.points.iter().chain(&conv.uae.points) {
            assert!(p.train_auc_mean > 0.0 && p.train_auc_mean <= 1.0);
            assert!(p.val_auc_ci95 >= 0.0);
        }
        let rendered = conv.render();
        assert!(rendered.contains("Epoch"));
        assert!(rendered.lines().count() >= 4);
    }
}
