//! Table IV: all seven base models trained with and without UAE on both
//! datasets, reporting AUC, GAUC, RelaImpr and t-test significance.

use uae_metrics::{mean, paired_t_test, rela_impr};
use uae_models::ModelKind;

use crate::harness::{over_seeds_isolated, prepare, AttentionMethod, HarnessConfig, Preset};
use crate::table::{pct, rela, starred, TextTable};

/// Per-(dataset, model) aggregate of the Base and +UAE variants.
#[derive(Debug, Clone)]
pub struct Table4Entry {
    pub dataset: &'static str,
    pub model: ModelKind,
    pub base_auc: Vec<f64>,
    pub uae_auc: Vec<f64>,
    pub base_gauc: Vec<f64>,
    pub uae_gauc: Vec<f64>,
}

impl Table4Entry {
    pub fn auc_improvement(&self) -> f64 {
        rela_impr(mean(&self.uae_auc), mean(&self.base_auc))
    }

    pub fn gauc_improvement(&self) -> f64 {
        rela_impr(mean(&self.uae_gauc), mean(&self.base_gauc))
    }

    /// Paper-style significance of the +UAE improvement (paired t-test over
    /// seeds, p < 0.05). `None` when too few seeds.
    pub fn auc_significant(&self) -> Option<bool> {
        paired_t_test(&self.uae_auc, &self.base_auc).map(|t| t.significant(0.05))
    }

    pub fn gauc_significant(&self) -> Option<bool> {
        paired_t_test(&self.uae_gauc, &self.base_gauc).map(|t| t.significant(0.05))
    }
}

/// The full Table IV.
#[derive(Debug, Clone, Default)]
pub struct Table4 {
    pub entries: Vec<Table4Entry>,
    /// Per-seed fault report from the panic-isolated fan-out (empty when
    /// every seed ran clean; failed seeds are dropped from the aggregates).
    pub faults: Vec<String>,
}

/// Runs the Table IV experiment grid.
///
/// For each dataset and seed, UAE is fitted once and its weights are shared
/// by all seven models (matching the paper: UAE is model-agnostic). Seeds
/// run on parallel panic-isolated threads; a seed that dies twice is
/// reported in [`Table4::faults`] and excluded from the aggregates.
pub fn run_table4(cfg: &HarnessConfig) -> Table4 {
    let mut table = Table4::default();
    let _table_span = uae_obs::span("table4");
    for preset in Preset::both() {
        let _preset_span = uae_obs::span(&format!("table4.{}", preset.name()));
        let data = prepare(preset, cfg);
        // seed → per-model (base, uae) metrics
        let fan = over_seeds_isolated(&cfg.seeds, |seed| {
            let uae_weights = AttentionMethod::Uae
                .weights(&data, cfg, seed)
                .expect("UAE produces weights");
            ModelKind::all()
                .into_iter()
                .map(|kind| {
                    let base = crate::harness::run_model(kind, None, &data, cfg, seed);
                    let ours =
                        crate::harness::run_model(kind, Some(&uae_weights), &data, cfg, seed);
                    (
                        kind,
                        base.result.auc,
                        base.result.gauc,
                        ours.result.auc,
                        ours.result.gauc,
                    )
                })
                .collect::<Vec<_>>()
        });
        table.faults.extend(
            fan.fault_report()
                .into_iter()
                .map(|f| format!("[{}] {f}", preset.name())),
        );
        let per_seed = fan.values();
        for (mi, kind) in ModelKind::all().into_iter().enumerate() {
            let mut entry = Table4Entry {
                dataset: preset.name(),
                model: kind,
                base_auc: vec![],
                uae_auc: vec![],
                base_gauc: vec![],
                uae_gauc: vec![],
            };
            for seed_result in &per_seed {
                let (k, ba, bg, ua, ug) = seed_result[mi];
                debug_assert_eq!(k, kind);
                entry.base_auc.push(ba);
                entry.base_gauc.push(bg);
                entry.uae_auc.push(ua);
                entry.uae_gauc.push(ug);
            }
            table.entries.push(entry);
        }
    }
    table
}

impl Table4 {
    /// Renders in the paper's layout: per dataset and metric, three rows
    /// (Base, +UAE, RelaImpr) with one column per model.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let datasets: Vec<&'static str> = {
            let mut seen = Vec::new();
            for e in &self.entries {
                if !seen.contains(&e.dataset) {
                    seen.push(e.dataset);
                }
            }
            seen
        };
        for dataset in datasets {
            for metric in ["AUC", "GAUC"] {
                out.push_str(&format!("\n[{dataset}] {metric}\n"));
                let mut header = vec!["Variant"];
                let names: Vec<&'static str> = ModelKind::all().iter().map(|k| k.name()).collect();
                header.extend(names.iter());
                let mut t = TextTable::new(&header);
                let row = |f: &dyn Fn(&Table4Entry) -> String, label: &str| -> Vec<String> {
                    let mut cells = vec![label.to_string()];
                    for kind in ModelKind::all() {
                        let cell = self
                            .entries
                            .iter()
                            .find(|e| e.dataset == dataset && e.model == kind)
                            .map(f)
                            .unwrap_or_else(|| "-".to_string());
                        cells.push(cell);
                    }
                    cells
                };
                if metric == "AUC" {
                    t.add_row(row(&|e| pct(mean(&e.base_auc)), "Base"));
                    t.add_row(row(
                        &|e| starred(pct(mean(&e.uae_auc)), e.auc_significant().unwrap_or(false)),
                        "+UAE (Ours)",
                    ));
                    t.add_row(row(&|e| rela(e.auc_improvement()), "RelaImpr"));
                } else {
                    t.add_row(row(&|e| pct(mean(&e.base_gauc)), "Base"));
                    t.add_row(row(
                        &|e| {
                            starred(
                                pct(mean(&e.uae_gauc)),
                                e.gauc_significant().unwrap_or(false),
                            )
                        },
                        "+UAE (Ours)",
                    ));
                    t.add_row(row(&|e| rela(e.gauc_improvement()), "RelaImpr"));
                }
                out.push_str(&t.render());
            }
        }
        out
    }

    /// Fraction of (dataset, model, metric) cells where +UAE beats Base.
    pub fn win_rate(&self) -> f64 {
        if self.entries.is_empty() {
            return 0.0;
        }
        let mut wins = 0usize;
        let mut total = 0usize;
        for e in &self.entries {
            total += 2;
            if mean(&e.uae_auc) > mean(&e.base_auc) {
                wins += 1;
            }
            if mean(&e.uae_gauc) > mean(&e.base_gauc) {
                wins += 1;
            }
        }
        wins as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One fast end-to-end pass over a reduced grid (single model) to keep
    /// test time bounded; the full grid runs in the bench harness.
    #[test]
    fn reduced_table4_structure() {
        let cfg = HarnessConfig::fast();
        let data = prepare(Preset::Product, &cfg);
        let w = AttentionMethod::Uae.weights(&data, &cfg, 1).unwrap();
        let base = crate::harness::run_model(ModelKind::Fm, None, &data, &cfg, 1);
        let ours = crate::harness::run_model(ModelKind::Fm, Some(&w), &data, &cfg, 1);
        let entry = Table4Entry {
            dataset: "Product",
            model: ModelKind::Fm,
            base_auc: vec![base.result.auc],
            uae_auc: vec![ours.result.auc],
            base_gauc: vec![base.result.gauc],
            uae_gauc: vec![ours.result.gauc],
        };
        // RelaImpr consistent with its inputs.
        let imp = entry.auc_improvement();
        assert!(imp.is_finite());
        // Single seed → no significance test possible.
        assert!(entry.auc_significant().is_none());
        let table = Table4 {
            entries: vec![entry],
            faults: vec![],
        };
        let rendered = table.render();
        assert!(rendered.contains("[Product] AUC"));
        assert!(rendered.contains("+UAE (Ours)"));
        assert!(table.win_rate() >= 0.0);
    }
}
