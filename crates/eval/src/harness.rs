//! Shared experiment plumbing: datasets, splits, attention methods, and
//! single training runs.

use uae_core::{
    downstream_weights, AttentionEstimator, BiasedAttentionBaseline, Edm, Uae, UaeConfig,
};
use uae_data::{generate, split_by_day, split_by_ratio, Dataset, FlatData, SimConfig, Split};
use uae_models::{
    evaluate, train, EvalResult, LabelMode, ModelConfig, ModelKind, TrainConfig, TrainReport,
};
use uae_runtime::UaeError;
use uae_tensor::Rng;

/// Which of the paper's two datasets to synthesise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Preset {
    ThirtyMusic,
    Product,
}

impl Preset {
    pub fn name(self) -> &'static str {
        match self {
            Preset::ThirtyMusic => "30-Music",
            Preset::Product => "Product",
        }
    }

    pub fn config(self, scale: f64) -> SimConfig {
        match self {
            Preset::ThirtyMusic => SimConfig::thirty_music(scale),
            Preset::Product => SimConfig::product(scale),
        }
    }

    /// The paper's split protocol: 8:1:1 random sessions for 30-Music,
    /// 7+1+1 days for Product.
    pub fn split(self, dataset: &Dataset, rng: &mut Rng) -> Split {
        match self {
            Preset::ThirtyMusic => split_by_ratio(dataset, 0.8, 0.1, rng),
            Preset::Product => split_by_day(dataset, 7, 1),
        }
    }

    pub fn both() -> [Preset; 2] {
        [Preset::ThirtyMusic, Preset::Product]
    }
}

/// Global harness configuration.
#[derive(Debug, Clone)]
pub struct HarnessConfig {
    /// Simulator scale factor (1.0 = the preset's default size).
    pub data_scale: f64,
    /// Seed for dataset generation (fixed across model seeds, as in the
    /// paper: the data is fixed; the model initialisation varies).
    pub data_seed: u64,
    /// Model-training seeds (the paper uses five).
    pub seeds: Vec<u64>,
    /// Eq. (19)'s γ for attention-derived weights.
    pub gamma: f32,
    pub model: ModelConfig,
    pub train: TrainConfig,
    pub uae: UaeConfig,
    /// Evaluation label mode. `Observed` is the paper's offline protocol
    /// (AUC/GAUC against constructed feedback labels); `OraclePreference`
    /// scores against the simulator's true preferences — an extension that
    /// exposes the de-noising mechanism directly (see DESIGN.md §5).
    pub label_mode: LabelMode,
}

impl HarnessConfig {
    /// Full-size harness used by the benches (minutes per table).
    pub fn full() -> Self {
        HarnessConfig {
            data_scale: 0.35,
            data_seed: 2024,
            seeds: vec![11, 22, 33, 44, 55],
            gamma: 15.0,
            model: ModelConfig::default(),
            train: TrainConfig {
                epochs: 8,
                batch_size: 512,
                early_stop_patience: Some(2),
                ..Default::default()
            },
            uae: UaeConfig::default(),
            label_mode: LabelMode::Observed,
        }
    }

    /// Small harness for tests (seconds per table).
    pub fn fast() -> Self {
        HarnessConfig {
            data_scale: 0.08,
            data_seed: 7,
            seeds: vec![1],
            gamma: 15.0,
            model: ModelConfig {
                hidden: vec![32, 16],
                ..Default::default()
            },
            train: TrainConfig {
                epochs: 2,
                batch_size: 256,
                early_stop_patience: None,
                ..Default::default()
            },
            uae: UaeConfig {
                gru_hidden: 12,
                mlp_hidden: vec![12],
                epochs: 1,
                ..Default::default()
            },
            label_mode: LabelMode::OraclePreference,
        }
    }
}

/// A synthesised dataset with its split and flattened views.
pub struct PreparedData {
    pub preset: Preset,
    pub dataset: Dataset,
    pub split: Split,
    pub train: FlatData,
    pub val: FlatData,
    pub test: FlatData,
}

/// Generates, splits, and flattens one preset's dataset.
pub fn prepare(preset: Preset, cfg: &HarnessConfig) -> PreparedData {
    let dataset = generate(&preset.config(cfg.data_scale), cfg.data_seed);
    let mut rng = Rng::seed_from_u64(cfg.data_seed ^ 0x73_706c);
    let split = preset.split(&dataset, &mut rng);
    let train = FlatData::from_sessions(&dataset, &split.train);
    let val = FlatData::from_sessions(&dataset, &split.val);
    let test = FlatData::from_sessions(&dataset, &split.test);
    PreparedData {
        preset,
        dataset,
        split,
        train,
        val,
        test,
    }
}

/// The attention-weighting methods compared in Tables IV–V.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttentionMethod {
    /// No re-weighting (the "Base" rows).
    Base,
    /// Exponential-decay heuristic.
    Edm,
    /// Negative-sampling heuristic of Zhang et al.
    Ndb,
    /// Naive PU baseline: all passives negative.
    Pn,
    /// PU-learning with local-feature propensities.
    Sar,
    /// The paper's contribution.
    Uae,
    /// Ground-truth attention probabilities (simulator-only upper bound).
    Oracle,
}

impl AttentionMethod {
    pub fn name(self) -> &'static str {
        match self {
            AttentionMethod::Base => "Base",
            AttentionMethod::Edm => "+EDM",
            AttentionMethod::Ndb => "+NDB",
            AttentionMethod::Pn => "+PN",
            AttentionMethod::Sar => "+SAR",
            AttentionMethod::Uae => "+UAE",
            AttentionMethod::Oracle => "+Oracle",
        }
    }

    /// The Table V column order (baselines then ours).
    pub fn table5() -> [AttentionMethod; 6] {
        [
            AttentionMethod::Base,
            AttentionMethod::Edm,
            AttentionMethod::Ndb,
            AttentionMethod::Pn,
            AttentionMethod::Sar,
            AttentionMethod::Uae,
        ]
    }

    /// Estimated attention probabilities `α̂` for every *training* event of
    /// `data` (flat order), or `None` for [`AttentionMethod::Base`].
    ///
    /// Fitting uses only observed feedback of the training sessions; the
    /// oracle method reads the simulator's truth instead.
    pub fn attention_scores(
        self,
        data: &PreparedData,
        cfg: &HarnessConfig,
        seed: u64,
    ) -> Option<Vec<f32>> {
        let sessions = &data.split.train;
        let uae_cfg = UaeConfig {
            seed,
            ..cfg.uae.clone()
        };
        match self {
            AttentionMethod::Base => None,
            AttentionMethod::Oracle => Some(data.train.true_alpha.clone()),
            AttentionMethod::Edm => Some(Edm::default().predict(&data.dataset, sessions)),
            AttentionMethod::Pn => {
                // The paper's PN treats the attention of every unlabeled
                // (passive) sample as exactly zero, i.e. passive events are
                // discarded (w(0; γ) = 0). Active events keep weight 1
                // through Eq. (18) regardless.
                Some(vec![0.0; data.train.len()])
            }
            AttentionMethod::Ndb => {
                let mut est = BiasedAttentionBaseline::ndb(&data.dataset.schema, uae_cfg, 10);
                est.fit(&data.dataset, sessions);
                Some(est.predict(&data.dataset, sessions))
            }
            AttentionMethod::Sar => {
                let mut est = Uae::new_sar(&data.dataset.schema, uae_cfg);
                est.fit(&data.dataset, sessions);
                Some(est.predict(&data.dataset, sessions))
            }
            AttentionMethod::Uae => {
                let mut est = Uae::new(&data.dataset.schema, uae_cfg);
                est.fit(&data.dataset, sessions);
                Some(est.predict(&data.dataset, sessions))
            }
        }
    }

    /// Downstream per-event weights (Eq. 19 over [`Self::attention_scores`]).
    pub fn weights(self, data: &PreparedData, cfg: &HarnessConfig, seed: u64) -> Option<Vec<f32>> {
        self.attention_scores(data, cfg, seed)
            .map(|alpha| downstream_weights(&alpha, cfg.gamma))
    }
}

/// Result of one (model, method, seed) training run.
pub struct RunOutcome {
    pub result: EvalResult,
    pub report: TrainReport,
}

/// Trains `kind` with the given pre-computed weights and evaluates on test.
pub fn run_model(
    kind: ModelKind,
    weights: Option<&[f32]>,
    data: &PreparedData,
    cfg: &HarnessConfig,
    seed: u64,
) -> RunOutcome {
    let mut rng = Rng::seed_from_u64(seed ^ 0x6d6f_6465);
    let (model, mut params) = kind.build(&data.dataset.schema, &cfg.model, &mut rng);
    let train_cfg = TrainConfig {
        seed,
        ..cfg.train.clone()
    };
    let report = train(
        model.as_ref(),
        &mut params,
        &data.train,
        weights,
        Some(&data.val),
        cfg.label_mode,
        &train_cfg,
    );
    let result = evaluate(
        model.as_ref(),
        &params,
        &data.test,
        cfg.label_mode,
        cfg.train.batch_size,
    );
    RunOutcome { result, report }
}

/// What happened to one seed of a panic-isolated fan-out.
#[derive(Debug, Clone)]
pub enum SeedOutcome<T> {
    /// The seed completed on its first attempt.
    Ok(T),
    /// The original seed panicked; a derived recovery seed succeeded.
    Recovered { recovery_seed: u64, value: T },
    /// Both the original seed and its recovery attempt panicked
    /// ([`UaeError::SeedPanic`]).
    Failed(UaeError),
}

impl<T> SeedOutcome<T> {
    /// The produced value, if any attempt succeeded.
    pub fn value(&self) -> Option<&T> {
        match self {
            SeedOutcome::Ok(v) | SeedOutcome::Recovered { value: v, .. } => Some(v),
            SeedOutcome::Failed(_) => None,
        }
    }

    /// Consumes the outcome into its value, if any attempt succeeded.
    pub fn into_value(self) -> Option<T> {
        match self {
            SeedOutcome::Ok(v) | SeedOutcome::Recovered { value: v, .. } => Some(v),
            SeedOutcome::Failed(_) => None,
        }
    }

    /// The typed error of a failed seed.
    pub fn error(&self) -> Option<&UaeError> {
        match self {
            SeedOutcome::Failed(e) => Some(e),
            _ => None,
        }
    }
}

/// Per-seed outcomes of [`over_seeds_isolated`], in seed order.
#[derive(Debug)]
pub struct SeedFanout<T> {
    pub seeds: Vec<u64>,
    pub outcomes: Vec<SeedOutcome<T>>,
}

impl<T> SeedFanout<T> {
    /// True when every seed produced a value on its first attempt.
    pub fn all_clean(&self) -> bool {
        self.outcomes
            .iter()
            .all(|o| matches!(o, SeedOutcome::Ok(_)))
    }

    /// Human-readable fault report: one line per recovered or failed seed
    /// (empty for a clean run).
    pub fn fault_report(&self) -> Vec<String> {
        self.seeds
            .iter()
            .zip(&self.outcomes)
            .filter_map(|(&seed, o)| match o {
                SeedOutcome::Ok(_) => None,
                SeedOutcome::Recovered { recovery_seed, .. } => Some(format!(
                    "seed {seed}: panicked, recovered with derived seed {recovery_seed}"
                )),
                SeedOutcome::Failed(e) => Some(format!("seed {seed}: {e}")),
            })
            .collect()
    }

    /// Surviving values in seed order (failed seeds are dropped, so a table
    /// aggregates over n−k seeds instead of crashing).
    pub fn values(self) -> Vec<T> {
        self.outcomes
            .into_iter()
            .filter_map(SeedOutcome::into_value)
            .collect()
    }
}

/// The replacement seed tried when a seed thread panics: a fixed XOR with
/// the splitmix64 increment, so it is deterministic, never equal to the
/// original, and far away in seed space.
pub fn derive_recovery_seed(seed: u64) -> u64 {
    seed ^ 0x9E37_79B9_7F4A_7C15
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Fans `f` out over the harness seeds on scoped threads with panic
/// isolation: a panicking seed is caught, retried once with
/// [`derive_recovery_seed`], and reported as a [`SeedOutcome`] instead of
/// propagating — so one diverged seed degrades a table run gracefully.
pub fn over_seeds_isolated<T: Send>(seeds: &[u64], f: impl Fn(u64) -> T + Sync) -> SeedFanout<T> {
    let f = &f;
    let attempt = move |seed: u64| -> Result<T, String> {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(seed))).map_err(panic_message)
    };
    // Worker threads inherit the caller's telemetry sink (sharing its `seq`
    // counter) so per-seed progress lands in the same JSONL stream.
    let obs = uae_obs::current_handle();
    let outcomes = std::thread::scope(|scope| {
        let handles: Vec<_> = seeds
            .iter()
            .map(|&seed| {
                let obs = obs.clone();
                scope.spawn(move || {
                    let run = move || {
                        uae_obs::emit(|| uae_obs::Event::SeedStart { seed });
                        let outcome = match attempt(seed) {
                            Ok(v) => SeedOutcome::Ok(v),
                            Err(first) => {
                                let recovery_seed = derive_recovery_seed(seed);
                                match attempt(recovery_seed) {
                                    Ok(value) => SeedOutcome::Recovered {
                                        recovery_seed,
                                        value,
                                    },
                                    Err(second) => SeedOutcome::Failed(UaeError::SeedPanic {
                                        seed,
                                        recovery_seed: Some(recovery_seed),
                                        message: format!("{first}; retry: {second}"),
                                    }),
                                }
                            }
                        };
                        uae_obs::emit(|| uae_obs::Event::SeedEnd {
                            seed,
                            outcome: match &outcome {
                                SeedOutcome::Ok(_) => "ok".to_string(),
                                SeedOutcome::Recovered { recovery_seed, .. } => {
                                    format!("recovered with derived seed {recovery_seed}")
                                }
                                SeedOutcome::Failed(e) => format!("failed: {e}"),
                            },
                        });
                        outcome
                    };
                    match obs {
                        Some(h) => uae_obs::with_handle(h, run),
                        None => run(),
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .zip(seeds)
            .map(|(h, &seed)| {
                h.join().unwrap_or_else(|payload| {
                    // catch_unwind already fenced the closure; reaching here
                    // means the thread died outside it. Degrade, don't crash.
                    SeedOutcome::Failed(UaeError::SeedPanic {
                        seed,
                        recovery_seed: None,
                        message: panic_message(payload),
                    })
                })
            })
            .collect()
    });
    SeedFanout {
        seeds: seeds.to_vec(),
        outcomes,
    }
}

/// Fans `f` out over the harness seeds on scoped threads, returning results
/// in seed order.
///
/// Legacy strict variant of [`over_seeds_isolated`]: a seed that panics
/// twice (original + recovery attempt) panics here too, with the full fault
/// report in the message.
pub fn over_seeds<T: Send>(seeds: &[u64], f: impl Fn(u64) -> T + Sync) -> Vec<T> {
    let fan = over_seeds_isolated(seeds, f);
    if fan.outcomes.iter().any(|o| o.error().is_some()) {
        panic!("seed fan-out failed: {}", fan.fault_report().join("; "));
    }
    fan.values()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prepare_builds_consistent_views() {
        let cfg = HarnessConfig::fast();
        let data = prepare(Preset::Product, &cfg);
        assert_eq!(data.preset.name(), "Product");
        let total = data.train.len() + data.val.len() + data.test.len();
        assert_eq!(total, data.dataset.num_events());
        assert!(data.train.len() > data.test.len());
    }

    #[test]
    fn thirty_music_uses_ratio_split() {
        let cfg = HarnessConfig::fast();
        let data = prepare(Preset::ThirtyMusic, &cfg);
        let n = data.dataset.sessions.len() as f64;
        let frac = data.split.train.len() as f64 / n;
        assert!((frac - 0.8).abs() < 0.05, "train fraction {frac}");
    }

    #[test]
    fn base_method_has_no_weights_and_oracle_uses_truth() {
        let cfg = HarnessConfig::fast();
        let data = prepare(Preset::Product, &cfg);
        assert!(AttentionMethod::Base.weights(&data, &cfg, 0).is_none());
        let oracle = AttentionMethod::Oracle
            .attention_scores(&data, &cfg, 0)
            .unwrap();
        assert_eq!(oracle, data.train.true_alpha);
    }

    #[test]
    fn run_model_produces_sane_metrics() {
        let cfg = HarnessConfig::fast();
        let data = prepare(Preset::Product, &cfg);
        let out = run_model(ModelKind::Fm, None, &data, &cfg, 1);
        assert!(out.result.auc > 0.4 && out.result.auc < 1.0);
        assert!(out.result.gauc > 0.3 && out.result.gauc <= 1.0);
        assert!(!out.report.history.is_empty());
    }

    #[test]
    fn over_seeds_preserves_order() {
        let out = over_seeds(&[3, 1, 2], |s| s * 10);
        assert_eq!(out, vec![30, 10, 20]);
    }

    #[test]
    fn isolated_fanout_survives_an_injected_panic() {
        // Seed 2 panics; its derived recovery seed succeeds. The other
        // seeds are untouched and order is preserved.
        let fan = over_seeds_isolated(&[1, 2, 3], |s| {
            if s == 2 {
                panic!("injected divergence");
            }
            s.wrapping_mul(10)
        });
        assert!(!fan.all_clean());
        assert!(matches!(fan.outcomes[0], SeedOutcome::Ok(10)));
        assert!(matches!(fan.outcomes[2], SeedOutcome::Ok(30)));
        match &fan.outcomes[1] {
            SeedOutcome::Recovered {
                recovery_seed,
                value,
            } => {
                assert_eq!(*recovery_seed, derive_recovery_seed(2));
                assert_eq!(*value, derive_recovery_seed(2).wrapping_mul(10));
            }
            other => panic!("expected recovery, got {other:?}"),
        }
        let report = fan.fault_report();
        assert_eq!(report.len(), 1);
        assert!(report[0].contains("recovered"), "{}", report[0]);
        assert_eq!(fan.values().len(), 3);
    }

    #[test]
    fn isolated_fanout_degrades_when_recovery_also_panics() {
        let bad = 2u64;
        let fan = over_seeds_isolated(&[1, bad, 3], |s| {
            if s == bad || s == derive_recovery_seed(bad) {
                panic!("hard failure");
            }
            s
        });
        assert!(fan.outcomes[1].error().is_some());
        match fan.outcomes[1].error() {
            Some(UaeError::SeedPanic {
                seed,
                recovery_seed,
                message,
            }) => {
                assert_eq!(*seed, bad);
                assert_eq!(*recovery_seed, Some(derive_recovery_seed(bad)));
                assert!(message.contains("hard failure"));
            }
            other => panic!("expected SeedPanic, got {other:?}"),
        }
        // Surviving seeds still aggregate.
        assert_eq!(fan.values(), vec![1, 3]);
    }

    #[test]
    #[should_panic(expected = "seed fan-out failed")]
    fn strict_over_seeds_panics_with_fault_report() {
        let bad = 5u64;
        over_seeds(&[bad], |s: u64| -> u64 {
            if s == bad || s == derive_recovery_seed(bad) {
                panic!("boom");
            }
            s
        });
    }

    #[test]
    fn edm_weights_are_valid_probability_weights() {
        let cfg = HarnessConfig::fast();
        let data = prepare(Preset::Product, &cfg);
        let w = AttentionMethod::Edm.weights(&data, &cfg, 0).unwrap();
        assert_eq!(w.len(), data.train.len());
        assert!(w.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }
}
