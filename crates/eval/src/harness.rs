//! Shared experiment plumbing: datasets, splits, attention methods, and
//! single training runs.

use uae_core::{downstream_weights, AttentionEstimator, BiasedAttentionBaseline, Edm, Uae, UaeConfig};
use uae_data::{
    generate, split_by_day, split_by_ratio, Dataset, FlatData, SimConfig, Split,
};
use uae_models::{
    evaluate, train, EvalResult, LabelMode, ModelConfig, ModelKind, TrainConfig, TrainReport,
};
use uae_tensor::Rng;

/// Which of the paper's two datasets to synthesise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Preset {
    ThirtyMusic,
    Product,
}

impl Preset {
    pub fn name(self) -> &'static str {
        match self {
            Preset::ThirtyMusic => "30-Music",
            Preset::Product => "Product",
        }
    }

    pub fn config(self, scale: f64) -> SimConfig {
        match self {
            Preset::ThirtyMusic => SimConfig::thirty_music(scale),
            Preset::Product => SimConfig::product(scale),
        }
    }

    /// The paper's split protocol: 8:1:1 random sessions for 30-Music,
    /// 7+1+1 days for Product.
    pub fn split(self, dataset: &Dataset, rng: &mut Rng) -> Split {
        match self {
            Preset::ThirtyMusic => split_by_ratio(dataset, 0.8, 0.1, rng),
            Preset::Product => split_by_day(dataset, 7, 1),
        }
    }

    pub fn both() -> [Preset; 2] {
        [Preset::ThirtyMusic, Preset::Product]
    }
}

/// Global harness configuration.
#[derive(Debug, Clone)]
pub struct HarnessConfig {
    /// Simulator scale factor (1.0 = the preset's default size).
    pub data_scale: f64,
    /// Seed for dataset generation (fixed across model seeds, as in the
    /// paper: the data is fixed; the model initialisation varies).
    pub data_seed: u64,
    /// Model-training seeds (the paper uses five).
    pub seeds: Vec<u64>,
    /// Eq. (19)'s γ for attention-derived weights.
    pub gamma: f32,
    pub model: ModelConfig,
    pub train: TrainConfig,
    pub uae: UaeConfig,
    /// Evaluation label mode. `Observed` is the paper's offline protocol
    /// (AUC/GAUC against constructed feedback labels); `OraclePreference`
    /// scores against the simulator's true preferences — an extension that
    /// exposes the de-noising mechanism directly (see DESIGN.md §5).
    pub label_mode: LabelMode,
}

impl HarnessConfig {
    /// Full-size harness used by the benches (minutes per table).
    pub fn full() -> Self {
        HarnessConfig {
            data_scale: 0.35,
            data_seed: 2024,
            seeds: vec![11, 22, 33, 44, 55],
            gamma: 15.0,
            model: ModelConfig::default(),
            train: TrainConfig {
                epochs: 8,
                batch_size: 512,
                early_stop_patience: Some(2),
                ..Default::default()
            },
            uae: UaeConfig::default(),
            label_mode: LabelMode::Observed,
        }
    }

    /// Small harness for tests (seconds per table).
    pub fn fast() -> Self {
        HarnessConfig {
            data_scale: 0.08,
            data_seed: 7,
            seeds: vec![1],
            gamma: 15.0,
            model: ModelConfig {
                hidden: vec![32, 16],
                ..Default::default()
            },
            train: TrainConfig {
                epochs: 2,
                batch_size: 256,
                early_stop_patience: None,
                ..Default::default()
            },
            uae: UaeConfig {
                gru_hidden: 12,
                mlp_hidden: vec![12],
                epochs: 1,
                ..Default::default()
            },
            label_mode: LabelMode::OraclePreference,
        }
    }
}

/// A synthesised dataset with its split and flattened views.
pub struct PreparedData {
    pub preset: Preset,
    pub dataset: Dataset,
    pub split: Split,
    pub train: FlatData,
    pub val: FlatData,
    pub test: FlatData,
}

/// Generates, splits, and flattens one preset's dataset.
pub fn prepare(preset: Preset, cfg: &HarnessConfig) -> PreparedData {
    let dataset = generate(&preset.config(cfg.data_scale), cfg.data_seed);
    let mut rng = Rng::seed_from_u64(cfg.data_seed ^ 0x73_706c);
    let split = preset.split(&dataset, &mut rng);
    let train = FlatData::from_sessions(&dataset, &split.train);
    let val = FlatData::from_sessions(&dataset, &split.val);
    let test = FlatData::from_sessions(&dataset, &split.test);
    PreparedData {
        preset,
        dataset,
        split,
        train,
        val,
        test,
    }
}

/// The attention-weighting methods compared in Tables IV–V.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttentionMethod {
    /// No re-weighting (the "Base" rows).
    Base,
    /// Exponential-decay heuristic.
    Edm,
    /// Negative-sampling heuristic of Zhang et al.
    Ndb,
    /// Naive PU baseline: all passives negative.
    Pn,
    /// PU-learning with local-feature propensities.
    Sar,
    /// The paper's contribution.
    Uae,
    /// Ground-truth attention probabilities (simulator-only upper bound).
    Oracle,
}

impl AttentionMethod {
    pub fn name(self) -> &'static str {
        match self {
            AttentionMethod::Base => "Base",
            AttentionMethod::Edm => "+EDM",
            AttentionMethod::Ndb => "+NDB",
            AttentionMethod::Pn => "+PN",
            AttentionMethod::Sar => "+SAR",
            AttentionMethod::Uae => "+UAE",
            AttentionMethod::Oracle => "+Oracle",
        }
    }

    /// The Table V column order (baselines then ours).
    pub fn table5() -> [AttentionMethod; 6] {
        [
            AttentionMethod::Base,
            AttentionMethod::Edm,
            AttentionMethod::Ndb,
            AttentionMethod::Pn,
            AttentionMethod::Sar,
            AttentionMethod::Uae,
        ]
    }

    /// Estimated attention probabilities `α̂` for every *training* event of
    /// `data` (flat order), or `None` for [`AttentionMethod::Base`].
    ///
    /// Fitting uses only observed feedback of the training sessions; the
    /// oracle method reads the simulator's truth instead.
    pub fn attention_scores(
        self,
        data: &PreparedData,
        cfg: &HarnessConfig,
        seed: u64,
    ) -> Option<Vec<f32>> {
        let sessions = &data.split.train;
        let uae_cfg = UaeConfig {
            seed,
            ..cfg.uae.clone()
        };
        match self {
            AttentionMethod::Base => None,
            AttentionMethod::Oracle => Some(data.train.true_alpha.clone()),
            AttentionMethod::Edm => Some(Edm::default().predict(&data.dataset, sessions)),
            AttentionMethod::Pn => {
                // The paper's PN treats the attention of every unlabeled
                // (passive) sample as exactly zero, i.e. passive events are
                // discarded (w(0; γ) = 0). Active events keep weight 1
                // through Eq. (18) regardless.
                Some(vec![0.0; data.train.len()])
            }
            AttentionMethod::Ndb => {
                let mut est = BiasedAttentionBaseline::ndb(&data.dataset.schema, uae_cfg, 10);
                est.fit(&data.dataset, sessions);
                Some(est.predict(&data.dataset, sessions))
            }
            AttentionMethod::Sar => {
                let mut est = Uae::new_sar(&data.dataset.schema, uae_cfg);
                est.fit(&data.dataset, sessions);
                Some(est.predict(&data.dataset, sessions))
            }
            AttentionMethod::Uae => {
                let mut est = Uae::new(&data.dataset.schema, uae_cfg);
                est.fit(&data.dataset, sessions);
                Some(est.predict(&data.dataset, sessions))
            }
        }
    }

    /// Downstream per-event weights (Eq. 19 over [`Self::attention_scores`]).
    pub fn weights(
        self,
        data: &PreparedData,
        cfg: &HarnessConfig,
        seed: u64,
    ) -> Option<Vec<f32>> {
        self.attention_scores(data, cfg, seed)
            .map(|alpha| downstream_weights(&alpha, cfg.gamma))
    }
}

/// Result of one (model, method, seed) training run.
pub struct RunOutcome {
    pub result: EvalResult,
    pub report: TrainReport,
}

/// Trains `kind` with the given pre-computed weights and evaluates on test.
pub fn run_model(
    kind: ModelKind,
    weights: Option<&[f32]>,
    data: &PreparedData,
    cfg: &HarnessConfig,
    seed: u64,
) -> RunOutcome {
    let mut rng = Rng::seed_from_u64(seed ^ 0x6d6f_6465);
    let (model, mut params) = kind.build(&data.dataset.schema, &cfg.model, &mut rng);
    let train_cfg = TrainConfig {
        seed,
        ..cfg.train.clone()
    };
    let report = train(
        model.as_ref(),
        &mut params,
        &data.train,
        weights,
        Some(&data.val),
        cfg.label_mode,
        &train_cfg,
    );
    let result = evaluate(
        model.as_ref(),
        &params,
        &data.test,
        cfg.label_mode,
        cfg.train.batch_size,
    );
    RunOutcome { result, report }
}

/// Fans `f` out over the harness seeds on scoped threads, returning results
/// in seed order.
pub fn over_seeds<T: Send>(
    seeds: &[u64],
    f: impl Fn(u64) -> T + Sync,
) -> Vec<T> {
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = seeds
            .iter()
            .map(|&seed| scope.spawn(move || f(seed)))
            .collect();
        handles.into_iter().map(|h| h.join().expect("seed thread")).collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prepare_builds_consistent_views() {
        let cfg = HarnessConfig::fast();
        let data = prepare(Preset::Product, &cfg);
        assert_eq!(data.preset.name(), "Product");
        let total = data.train.len() + data.val.len() + data.test.len();
        assert_eq!(total, data.dataset.num_events());
        assert!(data.train.len() > data.test.len());
    }

    #[test]
    fn thirty_music_uses_ratio_split() {
        let cfg = HarnessConfig::fast();
        let data = prepare(Preset::ThirtyMusic, &cfg);
        let n = data.dataset.sessions.len() as f64;
        let frac = data.split.train.len() as f64 / n;
        assert!((frac - 0.8).abs() < 0.05, "train fraction {frac}");
    }

    #[test]
    fn base_method_has_no_weights_and_oracle_uses_truth() {
        let cfg = HarnessConfig::fast();
        let data = prepare(Preset::Product, &cfg);
        assert!(AttentionMethod::Base.weights(&data, &cfg, 0).is_none());
        let oracle = AttentionMethod::Oracle.attention_scores(&data, &cfg, 0).unwrap();
        assert_eq!(oracle, data.train.true_alpha);
    }

    #[test]
    fn run_model_produces_sane_metrics() {
        let cfg = HarnessConfig::fast();
        let data = prepare(Preset::Product, &cfg);
        let out = run_model(ModelKind::Fm, None, &data, &cfg, 1);
        assert!(out.result.auc > 0.4 && out.result.auc < 1.0);
        assert!(out.result.gauc > 0.3 && out.result.gauc <= 1.0);
        assert!(!out.report.history.is_empty());
    }

    #[test]
    fn over_seeds_preserves_order() {
        let out = over_seeds(&[3, 1, 2], |s| s * 10);
        assert_eq!(out, vec![30, 10, 20]);
    }

    #[test]
    fn edm_weights_are_valid_probability_weights() {
        let cfg = HarnessConfig::fast();
        let data = prepare(Preset::Product, &cfg);
        let w = AttentionMethod::Edm.weights(&data, &cfg, 0).unwrap();
        assert_eq!(w.len(), data.train.len());
        assert!(w.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }
}
