//! The estimator × scenario benchmark matrix.
//!
//! Every [`EstimatorSpec`] is trained on every simulator scenario (see
//! `SimConfig::scenario`) and scored *intrinsically* on a held-out session
//! split: how well does its α̂ rank true attention (AUC), how far off is its
//! mean (bias), and how much does that mean move across training seeds
//! (variance)? The matrix is the repo's standing answer to "which debiasing
//! scheme survives which failure mode" — committed as `MATRIX.md` and gated
//! in CI via the `perf_matrix` bench section.

use uae_core::{AttentionEstimator, EstimatorSpec, Uae, UaeConfig};
use uae_data::{generate, split_by_ratio, Dataset, FlatData, SimConfig};
use uae_metrics::{auc, mean};
use uae_tensor::Rng;

use crate::harness::over_seeds;
use crate::table::TextTable;

/// Configuration of one matrix run.
#[derive(Debug, Clone)]
pub struct MatrixConfig {
    /// Scenario names, resolved through `SimConfig::scenario`.
    pub scenarios: Vec<String>,
    /// Estimators to train in every scenario.
    pub estimators: Vec<EstimatorSpec>,
    /// Simulator scale (1.0 = the Product preset's default size).
    pub scale: f64,
    /// Training seeds; the across-seed spread feeds the variance column.
    pub seeds: Vec<u64>,
    /// Attention-model hyper-parameters (the estimator is overridden per
    /// cell).
    pub uae: UaeConfig,
    /// Seed for dataset generation (fixed across training seeds).
    pub data_seed: u64,
}

impl MatrixConfig {
    /// The full matrix: every scenario × every estimator, three seeds.
    pub fn full() -> Self {
        MatrixConfig {
            scenarios: uae_data::scenario_names()
                .iter()
                .map(|s| s.to_string())
                .collect(),
            estimators: EstimatorSpec::all(),
            scale: 0.25,
            seeds: vec![11, 22, 33],
            // The default epoch budget matters here: UAE's alternating
            // schedule needs the full `N_e` for its attention net to
            // converge, while PN plateaus (and starts fitting exposure)
            // much earlier — the committed gate compares them at this
            // budget.
            uae: UaeConfig::default(),
            data_seed: 2024,
        }
    }

    /// A seconds-scale smoke slice (2 estimators × 2 scenarios, one seed) —
    /// what CI runs.
    pub fn smoke() -> Self {
        MatrixConfig {
            scenarios: vec!["baseline".into(), "position-bias".into()],
            estimators: vec![EstimatorSpec::UaeDual, EstimatorSpec::Pn],
            scale: 0.05,
            seeds: vec![1],
            uae: UaeConfig {
                gru_hidden: 12,
                mlp_hidden: vec![12],
                epochs: 1,
                session_batch: 32,
                ..Default::default()
            },
            data_seed: 7,
        }
    }
}

/// One (scenario, estimator) cell, aggregated over seeds.
#[derive(Debug, Clone)]
pub struct MatrixCell {
    pub scenario: String,
    /// The estimator's CLI name (`uae`, `pn`, `rel-mf`, …).
    pub estimator: String,
    /// Mean over seeds of the AUC of α̂ against the true attention indicator
    /// on the held-out test sessions.
    pub auc: f64,
    /// Mean over seeds of `mean(α̂) − mean(true α)` on the test sessions
    /// (signed: negative = underestimates attention, the PN failure mode).
    pub bias: f64,
    /// Across-seed variance of `mean(α̂)` — the stability the paper's
    /// clipping buys.
    pub variance: f64,
}

/// The full matrix plus provenance.
#[derive(Debug, Clone)]
pub struct MatrixReport {
    pub cells: Vec<MatrixCell>,
    pub seeds: usize,
    pub scale: f64,
}

fn mean_f32(v: &[f32]) -> f64 {
    if v.is_empty() {
        return 0.0;
    }
    v.iter().map(|&x| x as f64).sum::<f64>() / v.len() as f64
}

/// Fits `spec` on the train split and scores α̂ on the test split.
/// Returns `(attention AUC, signed bias, mean α̂)`.
fn run_cell_seed(
    dataset: &Dataset,
    train: &[usize],
    test: &[usize],
    test_flat: &FlatData,
    uae_cfg: &UaeConfig,
    spec: EstimatorSpec,
    seed: u64,
) -> (f64, f64, f64) {
    let cfg = UaeConfig {
        estimator: spec,
        seed,
        ..uae_cfg.clone()
    };
    let mut model = Uae::new(&dataset.schema, cfg);
    model.fit(dataset, train);
    let alpha_hat = model.predict(dataset, test);
    let cell_auc = auc(&alpha_hat, &test_flat.true_attention).unwrap_or(0.5);
    let mean_hat = mean_f32(&alpha_hat);
    let bias = mean_hat - mean_f32(&test_flat.true_alpha);
    (cell_auc, bias, mean_hat)
}

/// Runs the estimator × scenario grid. Seeds fan out on panic-isolated
/// threads per cell; scenarios and estimators run sequentially so memory
/// stays bounded.
pub fn run_matrix(cfg: &MatrixConfig) -> MatrixReport {
    let _span = uae_obs::span("matrix");
    let mut cells = Vec::with_capacity(cfg.scenarios.len() * cfg.estimators.len());
    for scenario in &cfg.scenarios {
        let sim = SimConfig::scenario(scenario, cfg.scale)
            .unwrap_or_else(|| panic!("unknown scenario `{scenario}`"));
        let dataset = generate(&sim, cfg.data_seed);
        let mut rng = Rng::seed_from_u64(cfg.data_seed ^ 0x73_706c);
        let split = split_by_ratio(&dataset, 0.8, 0.1, &mut rng);
        let test_flat = FlatData::from_sessions(&dataset, &split.test);
        for &spec in &cfg.estimators {
            let _cell_span = uae_obs::span(&format!("matrix.{scenario}.{}", spec.cli_name()));
            let per_seed = over_seeds(&cfg.seeds, |seed| {
                run_cell_seed(
                    &dataset,
                    &split.train,
                    &split.test,
                    &test_flat,
                    &cfg.uae,
                    spec,
                    seed,
                )
            });
            let aucs: Vec<f64> = per_seed.iter().map(|r| r.0).collect();
            let biases: Vec<f64> = per_seed.iter().map(|r| r.1).collect();
            let means: Vec<f64> = per_seed.iter().map(|r| r.2).collect();
            let m = mean(&means);
            let variance = if means.len() > 1 {
                means.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (means.len() - 1) as f64
            } else {
                0.0
            };
            cells.push(MatrixCell {
                scenario: scenario.clone(),
                estimator: spec.cli_name().to_string(),
                auc: mean(&aucs),
                bias: mean(&biases),
                variance,
            });
        }
    }
    MatrixReport {
        cells,
        seeds: cfg.seeds.len(),
        scale: cfg.scale,
    }
}

impl MatrixReport {
    /// The cell for (scenario, estimator), if present.
    pub fn cell(&self, scenario: &str, estimator: &str) -> Option<&MatrixCell> {
        self.cells
            .iter()
            .find(|c| c.scenario == scenario && c.estimator == estimator)
    }

    /// Renders one plain-text table per metric (estimators as rows,
    /// scenarios as columns).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (metric, fmt) in [
            ("attention AUC", 0usize),
            ("bias (mean α̂ − mean α)", 1),
            ("across-seed variance of mean α̂", 2),
        ] {
            out.push_str(&format!("{metric}\n"));
            out.push_str(&self.metric_table(fmt).render());
            out.push('\n');
        }
        out
    }

    /// Renders the matrix as a GitHub-flavored markdown document (the
    /// committed `MATRIX.md`).
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str("# Estimator × scenario benchmark matrix\n\n");
        out.push_str(&format!(
            "Intrinsic attention-estimation quality on held-out sessions \
             ({} seed{}, simulator scale {}). Generated by `uae matrix` / the \
             `perf_matrix` bench — do not edit by hand.\n",
            self.seeds,
            if self.seeds == 1 { "" } else { "s" },
            self.scale
        ));
        for (title, which) in [
            ("Attention AUC (α̂ vs true attention; higher is better)", 0),
            ("Bias (mean α̂ − mean α; closer to 0 is better)", 1),
            ("Across-seed variance of mean α̂ (lower is steadier)", 2),
        ] {
            out.push_str(&format!("\n## {title}\n\n"));
            out.push_str(&self.markdown_table(which));
        }
        out
    }

    /// One cell value per metric index (0 = AUC, 1 = bias, 2 = variance).
    fn metric_value(&self, c: &MatrixCell, which: usize) -> String {
        match which {
            0 => format!("{:.4}", c.auc),
            1 => format!("{:+.4}", c.bias),
            _ => format!("{:.2e}", c.variance),
        }
    }

    fn scenario_order(&self) -> Vec<String> {
        let mut seen = Vec::new();
        for c in &self.cells {
            if !seen.contains(&c.scenario) {
                seen.push(c.scenario.clone());
            }
        }
        seen
    }

    fn estimator_order(&self) -> Vec<String> {
        let mut seen = Vec::new();
        for c in &self.cells {
            if !seen.contains(&c.estimator) {
                seen.push(c.estimator.clone());
            }
        }
        seen
    }

    fn metric_table(&self, which: usize) -> TextTable {
        let scenarios = self.scenario_order();
        let mut header = vec!["estimator"];
        header.extend(scenarios.iter().map(|s| s.as_str()));
        let mut table = TextTable::new(&header);
        for est in self.estimator_order() {
            let mut row = vec![est.clone()];
            for sc in &scenarios {
                row.push(match self.cell(sc, &est) {
                    Some(c) => self.metric_value(c, which),
                    None => "—".into(),
                });
            }
            table.add_row(row);
        }
        table
    }

    fn markdown_table(&self, which: usize) -> String {
        let scenarios = self.scenario_order();
        let mut out = String::from("| estimator |");
        for sc in &scenarios {
            out.push_str(&format!(" {sc} |"));
        }
        out.push('\n');
        out.push_str("|---|");
        for _ in &scenarios {
            out.push_str("---|");
        }
        out.push('\n');
        for est in self.estimator_order() {
            out.push_str(&format!("| {est} |"));
            for sc in &scenarios {
                let v = match self.cell(sc, &est) {
                    Some(c) => self.metric_value(c, which),
                    None => "—".into(),
                };
                out.push_str(&format!(" {v} |"));
            }
            out.push('\n');
        }
        out
    }

    /// One JSON object per cell, machine-readable (the committed
    /// `MATRIX.jsonl` and the `perf_matrix` BENCH section's payload).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for c in &self.cells {
            out.push_str(&format!(
                "{{\"scenario\":\"{}\",\"estimator\":\"{}\",\"auc\":{:.6},\"bias\":{:.6},\"variance\":{:.8}}}\n",
                c.scenario, c.estimator, c.auc, c.bias, c.variance
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_matrix_fills_every_cell() {
        let cfg = MatrixConfig::smoke();
        let report = run_matrix(&cfg);
        assert_eq!(
            report.cells.len(),
            cfg.scenarios.len() * cfg.estimators.len()
        );
        for c in &report.cells {
            assert!(c.auc.is_finite() && (0.0..=1.0).contains(&c.auc), "{c:?}");
            assert!(c.bias.is_finite() && c.bias.abs() <= 1.0, "{c:?}");
            assert!(c.variance.is_finite() && c.variance >= 0.0, "{c:?}");
        }
        // Both render paths cover every cell.
        let md = report.render_markdown();
        let jsonl = report.to_jsonl();
        for c in &report.cells {
            assert!(md.contains(&c.estimator));
            assert!(jsonl.contains(&format!("\"estimator\":\"{}\"", c.estimator)));
        }
        assert_eq!(jsonl.lines().count(), report.cells.len());
    }

    #[test]
    fn unknown_scenario_panics_loudly() {
        let mut cfg = MatrixConfig::smoke();
        cfg.scenarios = vec!["definitely-not-a-scenario".into()];
        let r = std::panic::catch_unwind(|| run_matrix(&cfg));
        assert!(r.is_err());
    }
}
