//! Closed-loop load generator for the serving daemon, with an optional
//! chaos mode.
//!
//! Grown out of the A/B simulator's user population ([`crate::ab`]): the
//! generator draws listener sessions from a simulated [`Dataset`], fans
//! them across N closed-loop client connections (each issues its next
//! request only after the previous one is answered — the classic
//! closed-loop model, so offered load tracks service rate instead of
//! stampeding), and classifies every answer by its typed [`UaeError`]
//! variant.
//!
//! The core accounting contract the chaos harness and CI gate assert:
//! **every request sent gets exactly one classified answer** —
//! `sent == ok + shed + deadline_missed + worker_panics + protocol_errors
//! + unavailable + other_errors`. A daemon that drops a request without a
//! response breaks [`LoadReport::all_accounted`].
//!
//! Chaos mode additionally injects *client-side* faults against the
//! daemon: malformed score frames (hostile payload behind a well-formed
//! length prefix) and truncated-frame mid-request disconnects on throwaway
//! connections, verifying the daemon answers the former with typed
//! protocol errors and survives the latter.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use uae_data::Dataset;
use uae_runtime::UaeError;
use uae_serve::{ServeClient, WireSession};
use uae_tensor::Rng;

/// Load shape knobs.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Daemon address, e.g. `127.0.0.1:7878`.
    pub addr: String,
    /// Concurrent closed-loop client connections.
    pub clients: usize,
    /// Requests each client issues before disconnecting.
    pub requests_per_client: usize,
    /// Sessions drawn per request.
    pub sessions_per_request: usize,
    /// Per-request latency budget forwarded to the daemon (0 = none).
    pub deadline_ms: u32,
    /// Seed for the deterministic session-draw sequence.
    pub seed: u64,
    /// Inject client-side faults (malformed frames, mid-request
    /// disconnects) alongside the well-formed load.
    pub chaos: bool,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            addr: "127.0.0.1:7878".into(),
            clients: 4,
            requests_per_client: 25,
            sessions_per_request: 4,
            deadline_ms: 0,
            seed: 17,
            chaos: false,
        }
    }
}

/// Outcome histogram plus latency digest of one load run.
#[derive(Debug, Clone, Default)]
pub struct LoadReport {
    /// Requests sent (well-formed score requests only; injected chaos
    /// frames are counted separately).
    pub sent: u64,
    /// Answered with scores.
    pub ok: u64,
    /// Answered with a typed `Overload` shed.
    pub shed: u64,
    /// Answered with a typed `DeadlineExceeded`.
    pub deadline_missed: u64,
    /// Answered with a typed `WorkerPanic`.
    pub worker_panics: u64,
    /// Answered with a typed `Protocol` error.
    pub protocol_errors: u64,
    /// Answered with a typed `Unavailable` (includes connection loss, which
    /// is the one case where the *transport*, not the daemon, answers).
    pub unavailable: u64,
    /// Any other typed error.
    pub other_errors: u64,
    /// Malformed chaos frames injected (each must still draw a typed
    /// protocol-error *reply* — counted in `chaos_answered`).
    pub chaos_injected: u64,
    /// Chaos frames that drew a typed reply instead of a dropped socket.
    pub chaos_answered: u64,
    /// Mid-request disconnects injected on throwaway connections.
    pub chaos_disconnects: u64,
    /// Events scored across all ok answers.
    pub events_scored: u64,
    /// Distinct serving generations observed in ok answers (sorted).
    pub generations_seen: Vec<u64>,
    /// Distinct daemon-side trace ids observed in ok answers (0 when the
    /// daemon runs untraced).
    pub traces_seen: u64,
    /// The daemon's `traces_started` counter from a final stats probe
    /// after the load drained (0 if the probe failed or tracing is off).
    pub traces_started: u64,
    /// The daemon's `traces_completed` counter from the same probe.
    pub traces_completed: u64,
    /// Latency digest over answered score requests, milliseconds.
    pub p50_ms: f64,
    pub p99_ms: f64,
    pub max_ms: f64,
    /// Wall-clock of the whole run, milliseconds.
    pub wall_ms: f64,
    /// Scored events per second of wall-clock.
    pub events_per_sec: f64,
}

impl LoadReport {
    /// Total requests that received a classified answer.
    pub fn answered(&self) -> u64 {
        self.ok
            + self.shed
            + self.deadline_missed
            + self.worker_panics
            + self.protocol_errors
            + self.unavailable
            + self.other_errors
    }

    /// The zero-drop contract: every request sent was answered (with
    /// scores or a typed degradation), nothing vanished.
    pub fn all_accounted(&self) -> bool {
        self.answered() == self.sent
    }

    /// The tracing counterpart of [`all_accounted`](Self::all_accounted):
    /// after the load drained, every trace the daemon minted was closed
    /// with an outcome (`traces_started == traces_completed`), and the ids
    /// we saw in replies are a subset of what was minted. Vacuously true
    /// when the daemon runs with tracing off.
    pub fn zero_orphan_traces(&self) -> bool {
        if self.traces_started == 0 && self.traces_completed == 0 {
            return true; // untraced daemon (or no stats probe): nothing to orphan
        }
        self.traces_started == self.traces_completed && self.traces_seen <= self.traces_started
    }
}

/// Extracts up to `limit` sessions of a dataset into wire form, skipping
/// empty ones (the session pool requests draw from).
pub fn session_pool(dataset: &Dataset, limit: usize) -> Vec<WireSession> {
    (0..dataset.sessions.len())
        .filter(|&s| !dataset.sessions[s].is_empty())
        .take(limit)
        .map(|s| WireSession::from_dataset(dataset, s))
        .collect()
}

struct ClientTally {
    report: LoadReport,
    latencies_ms: Vec<f64>,
    generations: std::collections::BTreeSet<u64>,
    trace_ids: std::collections::BTreeSet<u64>,
}

fn classify(tally: &mut ClientTally, err: &UaeError) {
    match err {
        UaeError::Overload { .. } => tally.report.shed += 1,
        UaeError::DeadlineExceeded { .. } => tally.report.deadline_missed += 1,
        UaeError::WorkerPanic { .. } => tally.report.worker_panics += 1,
        UaeError::Protocol { .. } => tally.report.protocol_errors += 1,
        UaeError::Unavailable { .. } => tally.report.unavailable += 1,
        _ => tally.report.other_errors += 1,
    }
}

fn run_client(
    cfg: &LoadgenConfig,
    pool: &[WireSession],
    client_id: u64,
    restarts: &AtomicU64,
) -> Result<ClientTally, UaeError> {
    let mut tally = ClientTally {
        report: LoadReport::default(),
        latencies_ms: Vec::with_capacity(cfg.requests_per_client),
        generations: std::collections::BTreeSet::new(),
        trace_ids: std::collections::BTreeSet::new(),
    };
    let mut rng = Rng::seed_from_u64(cfg.seed ^ client_id.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let mut client = ServeClient::connect(&cfg.addr)?;
    for req_no in 0..cfg.requests_per_client {
        if cfg.chaos && req_no % 11 == 7 {
            // Mid-request disconnect: a throwaway connection writes a
            // truncated frame (header promises more bytes than sent) and
            // hangs up. The daemon must shrug it off; our own connection
            // keeps working, which the next request verifies.
            if let Ok(throwaway) = ServeClient::connect(&cfg.addr) {
                let mut partial = (1024u32).to_le_bytes().to_vec();
                partial.extend_from_slice(&[0xAB; 17]);
                let _ = throwaway.send_bytes_and_hangup(&partial);
                tally.report.chaos_disconnects += 1;
            }
        }
        if cfg.chaos && req_no % 7 == 3 {
            // Malformed frame on the live connection: well-formed length
            // prefix, hostile body. Must be *answered* with a typed
            // protocol error, and the connection must stay usable.
            tally.report.chaos_injected += 1;
            let garbage = [1u8, 0xFF, 0xFF, 0xFF, 0xFF, 0x42];
            match client.call_raw_payload(&garbage) {
                Err(UaeError::Protocol { .. }) => tally.report.chaos_answered += 1,
                Err(_) | Ok(_) => {
                    // Daemon dropped the connection or answered something
                    // unexpected; reconnect so the well-formed load goes on.
                    restarts.fetch_add(1, Ordering::Relaxed);
                    client = ServeClient::connect(&cfg.addr)?;
                }
            }
        }
        let sessions: Vec<WireSession> = (0..cfg.sessions_per_request)
            .map(|_| pool[rng.below(pool.len())].clone())
            .collect();
        let events: u64 = sessions.iter().map(|s| s.len() as u64).sum();
        tally.report.sent += 1;
        let start = Instant::now();
        match client.score_traced(sessions, cfg.deadline_ms) {
            Ok((generation, trace_id, scored)) => {
                tally.latencies_ms.push(start.elapsed().as_secs_f64() * 1e3);
                tally.report.ok += 1;
                tally.report.events_scored += events;
                tally.generations.insert(generation);
                if trace_id != 0 {
                    tally.trace_ids.insert(trace_id);
                }
                debug_assert_eq!(
                    scored.iter().map(|s| s.attention.len() as u64).sum::<u64>(),
                    events
                );
            }
            Err(e) => {
                tally.latencies_ms.push(start.elapsed().as_secs_f64() * 1e3);
                classify(&mut tally, &e);
                if matches!(e, UaeError::Unavailable { .. }) {
                    // Transport died; reconnect for the remaining requests
                    // (a dead daemon turns the rest into connect errors,
                    // which the caller sees in `unavailable`).
                    match ServeClient::connect(&cfg.addr) {
                        Ok(c) => client = c,
                        Err(_) => {
                            let remaining = (cfg.requests_per_client - req_no - 1) as u64;
                            tally.report.sent += remaining;
                            tally.report.unavailable += remaining;
                            break;
                        }
                    }
                }
            }
        }
    }
    Ok(tally)
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Runs the closed-loop load against a live daemon and returns the merged
/// report. Fails only if a client cannot *initially* connect — every
/// in-flight failure after that is classified, not raised.
pub fn run_loadgen(cfg: &LoadgenConfig, dataset: &Dataset) -> Result<LoadReport, UaeError> {
    let pool = session_pool(dataset, 512);
    if pool.is_empty() {
        return Err(UaeError::Protocol {
            detail: "load generator needs a dataset with at least one non-empty session".into(),
        });
    }
    let restarts = Arc::new(AtomicU64::new(0));
    let start = Instant::now();
    let tallies: Vec<Result<ClientTally, UaeError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.clients.max(1))
            .map(|c| {
                let pool = &pool;
                let restarts = Arc::clone(&restarts);
                scope.spawn(move || run_client(cfg, pool, c as u64, &restarts))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    let mut merged = LoadReport::default();
    let mut latencies: Vec<f64> = Vec::new();
    let mut generations = std::collections::BTreeSet::new();
    let mut trace_ids = std::collections::BTreeSet::new();
    for tally in tallies {
        let t = tally?;
        merged.sent += t.report.sent;
        merged.ok += t.report.ok;
        merged.shed += t.report.shed;
        merged.deadline_missed += t.report.deadline_missed;
        merged.worker_panics += t.report.worker_panics;
        merged.protocol_errors += t.report.protocol_errors;
        merged.unavailable += t.report.unavailable;
        merged.other_errors += t.report.other_errors;
        merged.chaos_injected += t.report.chaos_injected;
        merged.chaos_answered += t.report.chaos_answered;
        merged.chaos_disconnects += t.report.chaos_disconnects;
        merged.events_scored += t.report.events_scored;
        latencies.extend(t.latencies_ms);
        generations.extend(t.generations);
        trace_ids.extend(t.trace_ids);
    }
    merged.traces_seen = trace_ids.len() as u64;
    // Final stats probe: the daemon's trace ledger after the load drained.
    // Every request above already has its answer, so in a quiet daemon
    // started == completed here; a failed probe (daemon gone) leaves zeros,
    // which `zero_orphan_traces` treats as vacuous.
    if let Ok(mut probe) = ServeClient::connect(&cfg.addr) {
        if let Ok(stats) = probe.stats() {
            merged.traces_started = stats.traces_started;
            merged.traces_completed = stats.traces_completed;
        }
    }
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    merged.p50_ms = percentile(&latencies, 0.50);
    merged.p99_ms = percentile(&latencies, 0.99);
    merged.max_ms = latencies.last().copied().unwrap_or(0.0);
    merged.wall_ms = wall_ms;
    merged.events_per_sec = if wall_ms > 0.0 {
        merged.events_scored as f64 / (wall_ms / 1e3)
    } else {
        0.0
    };
    merged.generations_seen = generations.into_iter().collect();
    uae_obs::counter("loadgen.sent", merged.sent);
    uae_obs::counter("loadgen.ok", merged.ok);
    uae_obs::counter("loadgen.shed", merged.shed);
    uae_obs::gauge("loadgen.p99_ms", merged.p99_ms);
    Ok(merged)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_accounting_is_exact() {
        let mut r = LoadReport {
            sent: 10,
            ok: 6,
            shed: 1,
            deadline_missed: 1,
            worker_panics: 1,
            protocol_errors: 0,
            unavailable: 1,
            ..LoadReport::default()
        };
        assert_eq!(r.answered(), 10);
        assert!(r.all_accounted());
        r.sent += 1; // one silent drop breaks the contract
        assert!(!r.all_accounted());
    }

    #[test]
    fn orphan_trace_contract() {
        let mut r = LoadReport {
            traces_seen: 6,
            traces_started: 10,
            traces_completed: 10,
            ..LoadReport::default()
        };
        assert!(r.zero_orphan_traces());
        r.traces_completed = 9; // one trace never closed
        assert!(!r.zero_orphan_traces());
        // Untraced daemon: all zeros is vacuously fine.
        assert!(LoadReport::default().zero_orphan_traces());
    }

    #[test]
    fn percentile_digest_is_stable() {
        let sorted: Vec<f64> = (1..=100).map(|v| v as f64).collect();
        assert_eq!(percentile(&sorted, 0.50), 51.0);
        assert_eq!(percentile(&sorted, 0.99), 99.0);
        assert_eq!(percentile(&[], 0.99), 0.0);
        assert_eq!(percentile(&[7.5], 0.5), 7.5);
    }

    #[test]
    fn session_pool_skips_empty_sessions() {
        let mut ds = uae_data::generate(&uae_data::SimConfig::tiny(), 5);
        ds.sessions[0].events.clear();
        let pool = session_pool(&ds, 8);
        assert!(pool.len() <= 8);
        assert!(pool.iter().all(|s| !s.is_empty()));
    }
}
