//! Fig. 7: a seven-day online A/B test.
//!
//! The paper deploys UAE on Huawei Music and reports daily relative uplift
//! in play count and play time (> 2% on average). We reproduce the protocol
//! against the behaviour simulator: a **control** arm serves users with a
//! plain DCN-V2; a **treatment** arm serves the same simulated sessions with
//! DCN-V2 trained under UAE's re-weighting. At every step of every session
//! the arm's model ranks a candidate slate, the chosen song is played, and
//! the simulated user responds through the same attention/propensity
//! behaviour model that generated the training logs. Sessions are *paired*
//! across arms (same user, context, slate, random stream) to cut variance.

use uae_data::{gen::SessionContext, Dataset, FlatBatch, Simulator};
use uae_models::{ModelKind, Recommender};
use uae_tensor::{Matrix, Params, Rng};

use crate::harness::{prepare, AttentionMethod, HarnessConfig, Preset};
use crate::table::TextTable;

/// Serving-simulation knobs.
#[derive(Debug, Clone)]
pub struct AbConfig {
    /// Days of the A/B test (the paper runs 7).
    pub days: usize,
    /// Sessions served per day per arm.
    pub sessions_per_day: usize,
    /// Candidate-slate size per step.
    pub candidates: usize,
    /// Nominal song length in minutes.
    pub song_minutes: f64,
    /// Fraction of a song heard before a skip lands.
    pub skip_fraction: f64,
    pub seed: u64,
}

impl Default for AbConfig {
    fn default() -> Self {
        AbConfig {
            days: 7,
            sessions_per_day: 300,
            candidates: 15,
            song_minutes: 3.5,
            skip_fraction: 0.3,
            seed: 99,
        }
    }
}

/// One day's metrics for both arms.
#[derive(Debug, Clone, Copy)]
pub struct AbDay {
    pub day: usize,
    pub control_play_count: f64,
    pub treatment_play_count: f64,
    pub control_play_time: f64,
    pub treatment_play_time: f64,
}

impl AbDay {
    /// Relative play-count uplift of treatment over control, in percent.
    pub fn count_uplift(&self) -> f64 {
        (self.treatment_play_count / self.control_play_count - 1.0) * 100.0
    }

    /// Relative play-time uplift in percent.
    pub fn time_uplift(&self) -> f64 {
        (self.treatment_play_time / self.control_play_time - 1.0) * 100.0
    }
}

/// Full A/B outcome.
#[derive(Debug, Clone)]
pub struct AbOutcome {
    pub days: Vec<AbDay>,
}

impl AbOutcome {
    pub fn mean_count_uplift(&self) -> f64 {
        self.days.iter().map(AbDay::count_uplift).sum::<f64>() / self.days.len().max(1) as f64
    }

    pub fn mean_time_uplift(&self) -> f64 {
        self.days.iter().map(AbDay::time_uplift).sum::<f64>() / self.days.len().max(1) as f64
    }

    /// Renders the daily uplift series of Fig. 7.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(&["Day", "Play-count uplift %", "Play-time uplift %"]);
        for d in &self.days {
            t.add_row(vec![
                format!("{}", d.day + 1),
                format!("{:+.2}", d.count_uplift()),
                format!("{:+.2}", d.time_uplift()),
            ]);
        }
        let mut out = t.render();
        out.push_str(&format!(
            "Average: play count {:+.2}%  play time {:+.2}%\n",
            self.mean_count_uplift(),
            self.mean_time_uplift()
        ));
        out
    }
}

/// A trained serving arm.
struct Arm {
    model: Box<dyn Recommender + Send + Sync>,
    params: Params,
}

impl Arm {
    /// Scores a candidate slate and returns the index of the best candidate.
    fn choose(
        &self,
        sim: &Simulator,
        user: usize,
        candidates: &[usize],
        t: usize,
        ctx: SessionContext,
        feature_rng: &mut Rng,
    ) -> usize {
        let mut cat: Vec<Vec<usize>> = Vec::new();
        let mut dense_rows: Vec<f32> = Vec::new();
        let mut dense_cols = 0usize;
        for &song in candidates {
            let (c, d) = sim.features(user, song, t, ctx, feature_rng);
            if cat.is_empty() {
                cat = vec![Vec::with_capacity(candidates.len()); c.len()];
            }
            for (f, v) in c.into_iter().enumerate() {
                cat[f].push(v as usize);
            }
            dense_cols = d.len();
            dense_rows.extend_from_slice(&d);
        }
        let batch = FlatBatch {
            cat,
            dense: Matrix::from_vec(candidates.len(), dense_cols, dense_rows),
            label: vec![false; candidates.len()],
            active: vec![false; candidates.len()],
            indices: (0..candidates.len()).collect(),
        };
        let mut tape = uae_tensor::Tape::new();
        let logits = self.model.forward(&mut tape, &self.params, &batch);
        let scores = tape.value(logits);
        (0..candidates.len())
            .max_by(|&a, &b| {
                scores
                    .get(a, 0)
                    .partial_cmp(&scores.get(b, 0))
                    .expect("finite score")
            })
            .expect("non-empty slate")
    }
}

/// Plays one session with an arm's policy; returns (play count, play time).
#[allow(clippy::too_many_arguments)]
fn serve_session(
    arm: &Arm,
    sim: &Simulator,
    user: usize,
    ctx: SessionContext,
    length: usize,
    slates: &[Vec<usize>],
    ab: &AbConfig,
    rng: &mut Rng,
) -> (f64, f64) {
    let mut history_e: Vec<bool> = Vec::with_capacity(length);
    let mut play_count = 0.0;
    let mut play_time = 0.0;
    for (t, slate) in slates.iter().enumerate().take(length) {
        let mut feature_rng = rng.fork();
        let pick = arm.choose(sim, user, slate, t, ctx, &mut feature_rng);
        let song = slate[pick];
        let (feedback, _truth) = sim.outcome(user, song, t, &history_e, ctx, rng);
        history_e.push(feedback.is_active());
        if feedback.label() {
            // Played through (auto-play or an explicit positive action).
            play_count += 1.0;
            play_time += ab.song_minutes;
        } else {
            // Skipped / disliked: partial listen, no completed play.
            play_time += ab.song_minutes * ab.skip_fraction;
        }
    }
    (play_count, play_time)
}

/// Trains both arms on the Product preset and serves `ab.days` days.
pub fn run_ab_test(cfg: &HarnessConfig, ab: &AbConfig) -> AbOutcome {
    let data = prepare(Preset::Product, cfg);
    let seed = cfg.seeds.first().copied().unwrap_or(0);

    // Control: plain DCN-V2. Treatment: DCN-V2 + UAE weights.
    let control = {
        let mut rng = Rng::seed_from_u64(seed ^ 0x6374_726c);
        let (model, mut params) =
            ModelKind::DcnV2.build(&data.dataset.schema, &cfg.model, &mut rng);
        let report = uae_models::train(
            model.as_ref(),
            &mut params,
            &data.train,
            None,
            Some(&data.val),
            cfg.label_mode,
            &cfg.train,
        );
        let _ = report;
        Arm { model, params }
    };
    let treatment = {
        let w = AttentionMethod::Uae
            .weights(&data, cfg, seed)
            .expect("weights");
        let mut rng = Rng::seed_from_u64(seed ^ 0x6374_726c);
        let (model, mut params) =
            ModelKind::DcnV2.build(&data.dataset.schema, &cfg.model, &mut rng);
        uae_models::train(
            model.as_ref(),
            &mut params,
            &data.train,
            Some(&w),
            Some(&data.val),
            cfg.label_mode,
            &cfg.train,
        );
        Arm { model, params }
    };

    serve_ab(&data.dataset, &control, &treatment, cfg, ab)
}

/// Serves the two already-trained arms against paired simulated traffic.
fn serve_ab(
    dataset: &Dataset,
    control: &Arm,
    treatment: &Arm,
    cfg: &HarnessConfig,
    ab: &AbConfig,
) -> AbOutcome {
    let sim = Simulator::new(Preset::Product.config(cfg.data_scale), cfg.data_seed);
    debug_assert_eq!(sim.schema().num_features(), dataset.schema.num_features());
    let mut days = Vec::with_capacity(ab.days);
    let mut rng = Rng::seed_from_u64(ab.seed ^ 0xab_ab_ab);
    for day in 0..ab.days {
        let mut day_stats = AbDay {
            day,
            control_play_count: 0.0,
            treatment_play_count: 0.0,
            control_play_time: 0.0,
            treatment_play_time: 0.0,
        };
        for _ in 0..ab.sessions_per_day {
            // Shared session skeleton: user, context, length, slates.
            let user = sim.sample_user(&mut rng);
            let ctx = sim.sample_context(day as u32 % 7, &mut rng);
            let length = sim.sample_length(&mut rng).min(40);
            let slates: Vec<Vec<usize>> = (0..length)
                .map(|_| sim.candidate_songs(ab.candidates, &mut rng))
                .collect();
            // Paired outcome streams.
            let mut rng_c = rng.fork();
            let mut rng_t = rng_c.clone();
            let (cc, ct) = serve_session(control, &sim, user, ctx, length, &slates, ab, &mut rng_c);
            let (tc, tt) =
                serve_session(treatment, &sim, user, ctx, length, &slates, ab, &mut rng_t);
            day_stats.control_play_count += cc;
            day_stats.control_play_time += ct;
            day_stats.treatment_play_count += tc;
            day_stats.treatment_play_time += tt;
        }
        days.push(day_stats);
    }
    AbOutcome { days }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ab_outcome_math() {
        let day = AbDay {
            day: 0,
            control_play_count: 100.0,
            treatment_play_count: 103.0,
            control_play_time: 200.0,
            treatment_play_time: 205.0,
        };
        assert!((day.count_uplift() - 3.0).abs() < 1e-9);
        assert!((day.time_uplift() - 2.5).abs() < 1e-9);
        let outcome = AbOutcome { days: vec![day] };
        assert!((outcome.mean_count_uplift() - 3.0).abs() < 1e-9);
        let rendered = outcome.render();
        assert!(rendered.contains("+3.00"));
        assert!(rendered.contains("Average"));
    }

    #[test]
    fn tiny_ab_test_runs_end_to_end() {
        let mut cfg = HarnessConfig::fast();
        cfg.data_scale = 0.05;
        let ab = AbConfig {
            days: 2,
            sessions_per_day: 10,
            candidates: 5,
            ..Default::default()
        };
        let outcome = run_ab_test(&cfg, &ab);
        assert_eq!(outcome.days.len(), 2);
        for d in &outcome.days {
            assert!(d.control_play_count > 0.0);
            assert!(d.treatment_play_count > 0.0);
            assert!(d.control_play_time > 0.0);
        }
    }
}
