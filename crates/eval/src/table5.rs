//! Table V: AutoInt and DCN-V2 equipped with each attention model (EDM, NDB,
//! PN, SAR, UAE) on both datasets — plus a reproduction-only extension
//! reporting the intrinsic quality of each attention estimator against the
//! simulator's ground truth (impossible on real logs; see footnote 4 of the
//! paper).

use uae_metrics::{auc, brier_score, expected_calibration_error, mean, paired_t_test, rela_impr};
use uae_models::ModelKind;

use crate::harness::{
    over_seeds_isolated, prepare, AttentionMethod, HarnessConfig, PreparedData, Preset,
};
use crate::table::{pct, rela, starred, TextTable};

/// Aggregate for one (dataset, base model, method) cell.
#[derive(Debug, Clone)]
pub struct Table5Entry {
    pub dataset: &'static str,
    pub model: ModelKind,
    pub method: AttentionMethod,
    pub auc: Vec<f64>,
    pub gauc: Vec<f64>,
}

/// Intrinsic attention-estimation quality of one method (extension).
#[derive(Debug, Clone)]
pub struct AttentionQuality {
    pub dataset: &'static str,
    pub method: AttentionMethod,
    /// AUC of α̂ against the true attention indicator.
    pub attention_auc: Vec<f64>,
    /// Brier score of α̂ against the true attention indicator.
    pub brier: Vec<f64>,
    /// Expected calibration error (10 bins).
    pub ece: Vec<f64>,
}

/// The full Table V (+ attention-quality extension).
#[derive(Debug, Clone, Default)]
pub struct Table5 {
    pub entries: Vec<Table5Entry>,
    pub quality: Vec<AttentionQuality>,
    /// Per-seed fault report from the panic-isolated fan-out (empty when
    /// every seed ran clean; failed seeds are dropped from the aggregates).
    pub faults: Vec<String>,
}

/// The base models Table V uses (the two strongest from Table IV).
pub fn table5_models() -> [ModelKind; 2] {
    [ModelKind::AutoInt, ModelKind::DcnV2]
}

fn quality_of(scores: &[f32], data: &PreparedData) -> (f64, f64, f64) {
    let truth = &data.train.true_attention;
    (
        auc(scores, truth).unwrap_or(0.5),
        brier_score(scores, truth),
        expected_calibration_error(scores, truth, 10),
    )
}

/// Runs the Table V grid. Seeds are parallel; within a seed each attention
/// method is fitted once and shared by both base models.
pub fn run_table5(cfg: &HarnessConfig) -> Table5 {
    run_table5_with(cfg, &AttentionMethod::table5())
}

/// As [`run_table5`] but over a custom method list (used by ablations).
pub fn run_table5_with(cfg: &HarnessConfig, methods: &[AttentionMethod]) -> Table5 {
    let mut table = Table5::default();
    let _table_span = uae_obs::span("table5");
    for preset in Preset::both() {
        let _preset_span = uae_obs::span(&format!("table5.{}", preset.name()));
        let data = prepare(preset, cfg);
        // seed → (per (method, model) metrics, per method quality)
        type SeedOut = (Vec<(usize, usize, f64, f64)>, Vec<(usize, f64, f64, f64)>);
        let fan = over_seeds_isolated(&cfg.seeds, |seed| {
            let mut cells = Vec::new();
            let mut quality = Vec::new();
            for (qi, &method) in methods.iter().enumerate() {
                let scores = method.attention_scores(&data, cfg, seed);
                if let Some(s) = &scores {
                    let (a, b, e) = quality_of(s, &data);
                    quality.push((qi, a, b, e));
                }
                let weights = scores.map(|s| uae_core::downstream_weights(&s, cfg.gamma));
                for (mi, kind) in table5_models().into_iter().enumerate() {
                    let out = crate::harness::run_model(kind, weights.as_deref(), &data, cfg, seed);
                    cells.push((qi, mi, out.result.auc, out.result.gauc));
                }
            }
            (cells, quality)
        });
        table.faults.extend(
            fan.fault_report()
                .into_iter()
                .map(|f| format!("[{}] {f}", preset.name())),
        );
        let per_seed: Vec<SeedOut> = fan.values();
        for (qi, &method) in methods.iter().enumerate() {
            for (mi, kind) in table5_models().into_iter().enumerate() {
                let mut entry = Table5Entry {
                    dataset: preset.name(),
                    model: kind,
                    method,
                    auc: vec![],
                    gauc: vec![],
                };
                for (cells, _) in &per_seed {
                    let &(_, _, a, g) = cells
                        .iter()
                        .find(|&&(q, m, _, _)| q == qi && m == mi)
                        .expect("cell");
                    entry.auc.push(a);
                    entry.gauc.push(g);
                }
                table.entries.push(entry);
            }
            if method != AttentionMethod::Base {
                let mut q = AttentionQuality {
                    dataset: preset.name(),
                    method,
                    attention_auc: vec![],
                    brier: vec![],
                    ece: vec![],
                };
                for (_, quality) in &per_seed {
                    if let Some(&(_, a, b, e)) = quality.iter().find(|&&(i, ..)| i == qi) {
                        q.attention_auc.push(a);
                        q.brier.push(b);
                        q.ece.push(e);
                    }
                }
                table.quality.push(q);
            }
        }
    }
    table
}

impl Table5 {
    fn find(&self, dataset: &str, model: ModelKind, method: AttentionMethod) -> &Table5Entry {
        self.entries
            .iter()
            .find(|e| e.dataset == dataset && e.model == model && e.method == method)
            .expect("table5 entry")
    }

    /// Renders the paper's layout: per (dataset, model), AUC and GAUC rows
    /// with RelaImpr against the Base column; `*` marks significance of the
    /// best method over the best baseline.
    pub fn render(&self, methods: &[AttentionMethod]) -> String {
        let mut out = String::new();
        let datasets: Vec<&'static str> = {
            let mut seen = Vec::new();
            for e in &self.entries {
                if !seen.contains(&e.dataset) {
                    seen.push(e.dataset);
                }
            }
            seen
        };
        for dataset in &datasets {
            for model in table5_models() {
                out.push_str(&format!("\n[{dataset}] base model: {}\n", model.name()));
                let mut header = vec!["Metric".to_string()];
                header.extend(methods.iter().map(|m| m.name().to_string()));
                let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
                let mut t = TextTable::new(&header_refs);
                for metric in ["AUC", "GAUC"] {
                    let get = |m: AttentionMethod| -> Vec<f64> {
                        let e = self.find(dataset, model, m);
                        if metric == "AUC" {
                            e.auc.clone()
                        } else {
                            e.gauc.clone()
                        }
                    };
                    let base = get(AttentionMethod::Base);
                    let mut cells = vec![metric.to_string()];
                    for &m in methods {
                        let vals = get(m);
                        let sig = if m == AttentionMethod::Uae {
                            // Versus the strongest baseline mean.
                            let best_baseline = methods
                                .iter()
                                .filter(|&&x| x != AttentionMethod::Uae)
                                .map(|&x| get(x))
                                .max_by(|a, b| mean(a).partial_cmp(&mean(b)).expect("finite"))
                                .unwrap_or_else(|| base.clone());
                            paired_t_test(&vals, &best_baseline)
                                .map(|t| t.significant(0.05) && mean(&vals) > mean(&best_baseline))
                                .unwrap_or(false)
                        } else {
                            false
                        };
                        cells.push(starred(pct(mean(&vals)), sig));
                    }
                    t.add_row(cells);
                    // RelaImpr row.
                    let mut cells = vec![format!("{metric} RelaImpr")];
                    for &m in methods {
                        cells.push(rela(rela_impr(mean(&get(m)), mean(&base))));
                    }
                    t.add_row(cells);
                }
                out.push_str(&t.render());
            }
        }
        if !self.quality.is_empty() {
            out.push_str("\nAttention-estimation quality vs. simulator ground truth (extension)\n");
            let mut t = TextTable::new(&["Dataset", "Method", "Attn AUC", "Brier", "ECE"]);
            for q in &self.quality {
                t.add_row(vec![
                    q.dataset.to_string(),
                    q.method.name().to_string(),
                    format!("{:.4}", mean(&q.attention_auc)),
                    format!("{:.4}", mean(&q.brier)),
                    format!("{:.4}", mean(&q.ece)),
                ]);
            }
            out.push_str(&t.render());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduced_table5_runs_and_renders() {
        let mut cfg = HarnessConfig::fast();
        cfg.data_scale = 0.05;
        // Keep runtime bounded: only EDM vs Base on one dataset via the
        // internal pieces.
        let data = prepare(Preset::ThirtyMusic, &cfg);
        let methods = [AttentionMethod::Base, AttentionMethod::Edm];
        let mut table = Table5::default();
        for &method in &methods {
            let scores = method.attention_scores(&data, &cfg, 1);
            if let Some(s) = &scores {
                let (a, b, e) = quality_of(s, &data);
                table.quality.push(AttentionQuality {
                    dataset: data.preset.name(),
                    method,
                    attention_auc: vec![a],
                    brier: vec![b],
                    ece: vec![e],
                });
            }
            let weights = scores.map(|s| uae_core::downstream_weights(&s, cfg.gamma));
            for kind in table5_models() {
                let out = crate::harness::run_model(kind, weights.as_deref(), &data, &cfg, 1);
                table.entries.push(Table5Entry {
                    dataset: data.preset.name(),
                    model: kind,
                    method,
                    auc: vec![out.result.auc],
                    gauc: vec![out.result.gauc],
                });
            }
        }
        let rendered = table.render(&methods);
        assert!(rendered.contains("base model: AutoInt"));
        assert!(rendered.contains("base model: DCN-V2"));
        assert!(rendered.contains("+EDM"));
        assert!(rendered.contains("Attn AUC"));
    }
}
