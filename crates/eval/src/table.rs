//! Plain-text table rendering for the experiment harness.

/// A simple aligned text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    pub fn new(header: &[&str]) -> Self {
        TextTable {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn add_row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with column alignment and a separator under the header.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].chars().count());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (c, cell) in cells.iter().enumerate() {
                if c > 0 {
                    line.push_str("  ");
                }
                line.push_str(cell);
                for _ in cell.chars().count()..widths[c] {
                    line.push(' ');
                }
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats an AUC-like metric as the paper does: percentage with two
/// decimals and the "%" omitted (e.g. 0.7417 → "74.17").
pub fn pct(x: f64) -> String {
    format!("{:.2}", x * 100.0)
}

/// Formats a RelaImpr value with two decimals (already in percent).
pub fn rela(x: f64) -> String {
    format!("{x:.2}")
}

/// Appends the paper's significance marker (`*` when p < 0.05).
pub fn starred(value: String, significant: bool) -> String {
    if significant {
        format!("{value}*")
    } else {
        value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(&["Model", "AUC"]);
        t.add_row(vec!["FM".into(), "74.90".into()]);
        t.add_row(vec!["Wide&Deep".into(), "73.84".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("Model"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // AUC column aligned: both values start at the same offset.
        let off2 = lines[2].find("74.90").unwrap();
        let off3 = lines[3].find("73.84").unwrap();
        assert_eq!(off2, off3);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_jagged_rows() {
        let mut t = TextTable::new(&["a", "b"]);
        t.add_row(vec!["x".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.7417), "74.17");
        assert_eq!(rela(1.0877), "1.09");
        assert_eq!(starred("74.17".into(), true), "74.17*");
        assert_eq!(starred("74.17".into(), false), "74.17");
    }
}
