//! Fig. 6: sensitivity of DCN-V2+UAE to the re-weighting parameter γ.
//!
//! Panel (a) is the analytical re-weight curve family (Eq. 19); panels (b)
//! and (c) are AUC/GAUC of DCN-V2+UAE for γ ∈ {5, 10, 15, 20, 25}, with the
//! plain DCN-V2 value as the reference line.

use uae_core::downstream_weights;
use uae_metrics::mean;
use uae_models::ModelKind;

use crate::harness::{over_seeds_isolated, prepare, AttentionMethod, HarnessConfig, Preset};
use crate::table::TextTable;

/// One γ's aggregate.
#[derive(Debug, Clone)]
pub struct GammaPoint {
    pub gamma: f32,
    pub auc: Vec<f64>,
    pub gauc: Vec<f64>,
}

/// The Fig. 6 experiment output.
#[derive(Debug, Clone)]
pub struct GammaSweep {
    pub points: Vec<GammaPoint>,
    /// Reference: plain DCN-V2 without UAE.
    pub base_auc: Vec<f64>,
    pub base_gauc: Vec<f64>,
    /// Per-seed fault report from the panic-isolated fan-out.
    pub faults: Vec<String>,
}

/// The γ grid the paper sweeps.
pub fn paper_gammas() -> [f32; 5] {
    [5.0, 10.0, 15.0, 20.0, 25.0]
}

/// Runs the sweep on the Product preset (as in the paper). UAE is fitted
/// once per seed; only the re-weighting changes across γ.
pub fn run_gamma_sweep(cfg: &HarnessConfig, gammas: &[f32]) -> GammaSweep {
    let data = prepare(Preset::Product, cfg);
    // seed → (base (auc, gauc), per-γ (auc, gauc))
    let fan = over_seeds_isolated(&cfg.seeds, |seed| {
        let alpha = AttentionMethod::Uae
            .attention_scores(&data, cfg, seed)
            .expect("scores");
        let base = crate::harness::run_model(ModelKind::DcnV2, None, &data, cfg, seed);
        let sweep: Vec<(f64, f64)> = gammas
            .iter()
            .map(|&g| {
                let w = downstream_weights(&alpha, g);
                let out = crate::harness::run_model(ModelKind::DcnV2, Some(&w), &data, cfg, seed);
                (out.result.auc, out.result.gauc)
            })
            .collect();
        ((base.result.auc, base.result.gauc), sweep)
    });
    let faults = fan.fault_report();
    let per_seed = fan.values();
    let mut points: Vec<GammaPoint> = gammas
        .iter()
        .map(|&gamma| GammaPoint {
            gamma,
            auc: vec![],
            gauc: vec![],
        })
        .collect();
    let mut base_auc = vec![];
    let mut base_gauc = vec![];
    for ((ba, bg), sweep) in &per_seed {
        base_auc.push(*ba);
        base_gauc.push(*bg);
        for (gi, &(a, g)) in sweep.iter().enumerate() {
            points[gi].auc.push(a);
            points[gi].gauc.push(g);
        }
    }
    GammaSweep {
        points,
        base_auc,
        base_gauc,
        faults,
    }
}

impl GammaSweep {
    /// Renders panels (b) and (c) as series.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(&["gamma", "AUC", "GAUC"]);
        for p in &self.points {
            t.add_row(vec![
                format!("{:.0}", p.gamma),
                format!("{:.4}", mean(&p.auc)),
                format!("{:.4}", mean(&p.gauc)),
            ]);
        }
        let mut out = t.render();
        out.push_str(&format!(
            "DCN-V2 reference: AUC {:.4}  GAUC {:.4}\n",
            mean(&self.base_auc),
            mean(&self.base_gauc)
        ));
        out
    }

    /// The best γ by AUC.
    pub fn best_gamma(&self) -> f32 {
        self.points
            .iter()
            .max_by(|a, b| mean(&a.auc).partial_cmp(&mean(&b.auc)).expect("finite"))
            .map(|p| p.gamma)
            .unwrap_or(15.0)
    }
}

/// Renders Fig. 6(a): the re-weight curves for each γ.
pub fn render_reweight_curves(gammas: &[f32], steps: usize) -> String {
    let mut header = vec!["alpha".to_string()];
    header.extend(gammas.iter().map(|g| format!("gamma={g:.0}")));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut t = TextTable::new(&header_refs);
    for i in 0..=steps {
        let a = i as f32 / steps as f32;
        let mut cells = vec![format!("{a:.2}")];
        for &g in gammas {
            cells.push(format!("{:.4}", uae_core::reweight(a, g)));
        }
        t.add_row(cells);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reweight_curves_render_all_gammas() {
        let s = render_reweight_curves(&paper_gammas(), 10);
        for g in paper_gammas() {
            assert!(s.contains(&format!("gamma={g:.0}")));
        }
        assert_eq!(s.lines().count(), 2 + 11);
    }

    #[test]
    fn gamma_sweep_structure_on_tiny_data() {
        let mut cfg = HarnessConfig::fast();
        cfg.data_scale = 0.05;
        let sweep = run_gamma_sweep(&cfg, &[5.0, 15.0]);
        assert_eq!(sweep.points.len(), 2);
        assert_eq!(sweep.points[0].auc.len(), cfg.seeds.len());
        assert!(sweep.best_gamma() == 5.0 || sweep.best_gamma() == 15.0);
        let rendered = sweep.render();
        assert!(rendered.contains("DCN-V2 reference"));
    }
}
