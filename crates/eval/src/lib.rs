//! # uae-eval
//!
//! The experiment harness reproducing every table and figure of the paper's
//! evaluation (§VI):
//!
//! | Module | Reproduces |
//! |---|---|
//! | [`harness`] | shared plumbing: presets, splits, attention methods |
//! | [`table4`] | Table IV — 7 base models ± UAE, both datasets |
//! | [`table5`] | Table V — AutoInt/DCN-V2 × {EDM, NDB, PN, SAR, UAE} |
//! | [`convergence`] | Fig. 5 — convergence curves with 95% CI bands |
//! | [`gamma`] | Fig. 6 — sensitivity to the re-weight parameter γ |
//! | [`ab`] | Fig. 7 — a paired 7-day online A/B serving simulation |
//! | [`loadgen`] | closed-loop load + chaos generator for the serving daemon |
//! | [`matrix`] | estimator × scenario benchmark matrix (extension) |
//! | [`table`] | plain-text rendering of all of the above |
//!
//! Dataset statistics (Figs. 2–3, Table III) live in `uae-data::stats`; the
//! theorem validations (Thms 1–6) in `uae-core::theory`. The bench targets
//! in `uae-bench` print each artifact via these modules.

pub mod ab;
pub mod convergence;
pub mod gamma;
pub mod harness;
pub mod loadgen;
pub mod matrix;
pub mod table;
pub mod table4;
pub mod table5;

pub use ab::{run_ab_test, AbConfig, AbDay, AbOutcome};
pub use convergence::{run_convergence, Convergence, ConvergenceCurve, EpochPoint};
pub use gamma::{paper_gammas, render_reweight_curves, run_gamma_sweep, GammaPoint, GammaSweep};
pub use harness::{
    derive_recovery_seed, over_seeds, over_seeds_isolated, prepare, run_model, AttentionMethod,
    HarnessConfig, PreparedData, Preset, RunOutcome, SeedFanout, SeedOutcome,
};
pub use loadgen::{run_loadgen, session_pool, LoadReport, LoadgenConfig};
pub use matrix::{run_matrix, MatrixCell, MatrixConfig, MatrixReport};
pub use table::{pct, rela, starred, TextTable};
pub use table4::{run_table4, Table4, Table4Entry};
pub use table5::{
    run_table5, run_table5_with, table5_models, AttentionQuality, Table5, Table5Entry,
};
